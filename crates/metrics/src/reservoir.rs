//! Uniform reservoir sampling for quantile estimation.

use serde::{Deserialize, Serialize};

/// A fixed-capacity uniform sample of an unbounded observation stream
/// (Vitter's Algorithm R), with exact quantiles over the retained sample.
///
/// The simulator records one waiting time per admitted peer — up to
/// 50,000 per class per run. A reservoir keeps quantile queries cheap and
/// memory bounded while staying unbiased.
///
/// The reservoir is deterministic: it derives its replacement choices from
/// an internal splitmix64 stream seeded at construction, so simulation
/// reports remain reproducible.
///
/// # Examples
///
/// ```
/// use p2ps_metrics::Reservoir;
///
/// let mut r = Reservoir::new(64, 7);
/// for x in 0..1_000 {
///     r.record(x as f64);
/// }
/// assert_eq!(r.observed(), 1_000);
/// assert_eq!(r.sample_len(), 64);
/// let median = r.quantile(0.5).unwrap();
/// assert!((200.0..800.0).contains(&median));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Reservoir {
    capacity: usize,
    sample: Vec<f64>,
    observed: u64,
    rng_state: u64,
}

impl Reservoir {
    /// Creates a reservoir retaining at most `capacity` observations.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize, seed: u64) -> Self {
        assert!(capacity > 0, "reservoir capacity must be positive");
        Reservoir {
            capacity,
            sample: Vec::with_capacity(capacity.min(1024)),
            observed: 0,
            rng_state: seed ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    fn next_u64(&mut self) -> u64 {
        // splitmix64
        self.rng_state = self.rng_state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.rng_state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Records one observation. Non-finite values are ignored.
    pub fn record(&mut self, x: f64) {
        if !x.is_finite() {
            return;
        }
        self.observed += 1;
        if self.sample.len() < self.capacity {
            self.sample.push(x);
        } else {
            // Algorithm R: replace a random slot with probability
            // capacity / observed.
            let j = (self.next_u64() % self.observed) as usize;
            if j < self.capacity {
                self.sample[j] = x;
            }
        }
    }

    /// Total observations seen (not just those retained).
    pub fn observed(&self) -> u64 {
        self.observed
    }

    /// Number of retained observations (`min(capacity, observed)`).
    pub fn sample_len(&self) -> usize {
        self.sample.len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.sample.is_empty()
    }

    /// The `q`-quantile (`0.0..=1.0`) of the retained sample by nearest
    /// rank, or `None` when empty.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
        if self.sample.is_empty() {
            return None;
        }
        let mut sorted = self.sample.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite values"));
        let rank = ((q * (sorted.len() - 1) as f64).round() as usize).min(sorted.len() - 1);
        Some(sorted[rank])
    }

    /// Mean of the retained sample (an unbiased estimate of the stream
    /// mean), or `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        if self.sample.is_empty() {
            None
        } else {
            Some(self.sample.iter().sum::<f64>() / self.sample.len() as f64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = Reservoir::new(0, 0);
    }

    #[test]
    fn below_capacity_keeps_everything() {
        let mut r = Reservoir::new(100, 1);
        for x in 0..50 {
            r.record(x as f64);
        }
        assert_eq!(r.sample_len(), 50);
        assert_eq!(r.observed(), 50);
        assert_eq!(r.quantile(0.0), Some(0.0));
        assert_eq!(r.quantile(1.0), Some(49.0));
    }

    #[test]
    fn above_capacity_is_bounded_and_plausible() {
        let mut r = Reservoir::new(32, 42);
        for x in 0..100_000 {
            r.record(x as f64);
        }
        assert_eq!(r.sample_len(), 32);
        assert_eq!(r.observed(), 100_000);
        // With 32 uniform samples of [0, 100k), the median estimate lands
        // well inside the central half with overwhelming probability.
        let median = r.quantile(0.5).unwrap();
        assert!((10_000.0..90_000.0).contains(&median), "median {median}");
    }

    #[test]
    fn sampling_is_unbiased_across_seeds() {
        // Average the retained-sample mean over many seeds: it must
        // approach the stream mean (4999.5).
        let mut grand = 0.0;
        let seeds = 200;
        for seed in 0..seeds {
            let mut r = Reservoir::new(16, seed);
            for x in 0..10_000 {
                r.record(x as f64);
            }
            grand += r.mean().unwrap();
        }
        let avg = grand / seeds as f64;
        assert!(
            (avg - 4_999.5).abs() < 300.0,
            "reservoir mean biased: {avg}"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let run = |seed| {
            let mut r = Reservoir::new(8, seed);
            for x in 0..1_000 {
                r.record(x as f64);
            }
            r.quantile(0.5)
        };
        assert_eq!(run(7), run(7));
    }

    #[test]
    fn non_finite_ignored_and_empty_queries() {
        let mut r = Reservoir::new(4, 0);
        r.record(f64::NAN);
        assert!(r.is_empty());
        assert_eq!(r.quantile(0.5), None);
        assert_eq!(r.mean(), None);
    }
}
