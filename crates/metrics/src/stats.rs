//! Streaming summary statistics.

use serde::{Deserialize, Serialize};

/// Streaming mean / variance / min / max accumulator using Welford's
/// online algorithm.
///
/// The accumulator is `O(1)` in memory regardless of how many samples are
/// recorded, which matters when the simulator records one observation per
/// admitted peer (tens of thousands per run).
///
/// # Examples
///
/// ```
/// use p2ps_metrics::OnlineStats;
///
/// let mut s = OnlineStats::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     s.record(x);
/// }
/// assert_eq!(s.count(), 8);
/// assert_eq!(s.mean(), 5.0);
/// assert_eq!(s.population_variance(), 4.0);
/// assert_eq!(s.min(), Some(2.0));
/// assert_eq!(s.max(), Some(9.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct OnlineStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Records one observation.
    ///
    /// Non-finite samples are ignored (and do not count towards
    /// [`count`](Self::count)) so that a stray `NaN` cannot poison a whole
    /// experiment series.
    pub fn record(&mut self, x: f64) {
        if !x.is_finite() {
            return;
        }
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        let delta2 = x - self.mean;
        self.m2 += delta * delta2;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merges another accumulator into this one (parallel Welford merge).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of recorded (finite) observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether no observations have been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Arithmetic mean of the observations; `0.0` when empty.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population variance (divide by `n`); `0.0` when empty.
    pub fn population_variance(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Sample variance (divide by `n - 1`); `0.0` for fewer than two samples.
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.population_variance().sqrt()
    }

    /// Smallest observation, if any.
    pub fn min(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.min)
        }
    }

    /// Largest observation, if any.
    pub fn max(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.max)
        }
    }

    /// Sum of all observations (`mean * count`).
    pub fn sum(&self) -> f64 {
        self.mean * self.count as f64
    }
}

impl std::fmt::Display for OnlineStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.count == 0 {
            write!(f, "n=0")
        } else {
            write!(
                f,
                "n={} mean={:.4} sd={:.4} min={:.4} max={:.4}",
                self.count,
                self.mean(),
                self.std_dev(),
                self.min,
                self.max
            )
        }
    }
}

impl Extend<f64> for OnlineStats {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for x in iter {
            self.record(x);
        }
    }
}

impl FromIterator<f64> for OnlineStats {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let mut s = OnlineStats::new();
        s.extend(iter);
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-9
    }

    #[test]
    fn empty_stats_are_zeroed() {
        let s = OnlineStats::new();
        assert_eq!(s.count(), 0);
        assert!(s.is_empty());
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.population_variance(), 0.0);
        assert_eq!(s.sample_variance(), 0.0);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
    }

    #[test]
    fn single_sample() {
        let mut s = OnlineStats::new();
        s.record(42.0);
        assert_eq!(s.count(), 1);
        assert_eq!(s.mean(), 42.0);
        assert_eq!(s.population_variance(), 0.0);
        assert_eq!(s.min(), Some(42.0));
        assert_eq!(s.max(), Some(42.0));
    }

    #[test]
    fn mean_and_variance_match_textbook() {
        let s: OnlineStats = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
            .into_iter()
            .collect();
        assert!(close(s.mean(), 5.0));
        assert!(close(s.population_variance(), 4.0));
        assert!(close(s.std_dev(), 2.0));
        assert!(close(s.sample_variance(), 32.0 / 7.0));
    }

    #[test]
    fn nan_and_infinite_samples_are_ignored() {
        let mut s = OnlineStats::new();
        s.record(f64::NAN);
        s.record(f64::INFINITY);
        s.record(f64::NEG_INFINITY);
        s.record(1.0);
        assert_eq!(s.count(), 1);
        assert_eq!(s.mean(), 1.0);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64) * 0.37 - 10.0).collect();
        let sequential: OnlineStats = xs.iter().copied().collect();
        let mut a: OnlineStats = xs[..33].iter().copied().collect();
        let b: OnlineStats = xs[33..].iter().copied().collect();
        a.merge(&b);
        assert_eq!(a.count(), sequential.count());
        assert!(close(a.mean(), sequential.mean()));
        assert!(close(
            a.population_variance(),
            sequential.population_variance()
        ));
        assert_eq!(a.min(), sequential.min());
        assert_eq!(a.max(), sequential.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut s: OnlineStats = [1.0, 2.0].into_iter().collect();
        let before = s;
        s.merge(&OnlineStats::new());
        assert_eq!(s, before);

        let mut e = OnlineStats::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn sum_matches_mean_times_count() {
        let s: OnlineStats = [1.5, 2.5, 3.0].into_iter().collect();
        assert!(close(s.sum(), 7.0));
    }

    #[test]
    fn display_is_nonempty() {
        let s = OnlineStats::new();
        assert_eq!(format!("{s}"), "n=0");
        let s: OnlineStats = [1.0].into_iter().collect();
        assert!(format!("{s}").contains("n=1"));
    }
}
