//! Time-indexed series of measurements.

use serde::{Deserialize, Serialize};

/// A named series of `(time, value)` samples in ascending time order.
///
/// Used for every "X over time" curve in the paper's figures (capacity
/// amplification, accumulative admission rate, accumulative buffering
/// delay). Times are plain `f64` in whatever unit the caller chooses —
/// experiment binaries use hours to match the paper's axes.
///
/// # Examples
///
/// ```
/// use p2ps_metrics::TimeSeries;
///
/// let mut s = TimeSeries::new("capacity");
/// s.push(0.0, 100.0);
/// s.push(24.0, 4000.0);
/// s.push(48.0, 9000.0);
/// assert_eq!(s.value_at(24.0), Some(4000.0));
/// assert_eq!(s.value_at(30.0), Some(4000.0)); // step semantics
/// assert_eq!(s.last(), Some((48.0, 9000.0)));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimeSeries {
    name: String,
    times: Vec<f64>,
    values: Vec<f64>,
}

impl TimeSeries {
    /// Creates an empty series with the given display name.
    pub fn new(name: impl Into<String>) -> Self {
        TimeSeries {
            name: name.into(),
            times: Vec::new(),
            values: Vec::new(),
        }
    }

    /// The display name given at construction.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Appends a sample.
    ///
    /// # Panics
    ///
    /// Panics if `t` is earlier than the last recorded time; series are
    /// append-only in time order.
    pub fn push(&mut self, t: f64, value: f64) {
        if let Some(&last) = self.times.last() {
            assert!(
                t >= last,
                "TimeSeries::push out of order: t={t} after t={last}"
            );
        }
        self.times.push(t);
        self.values.push(value);
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// Whether the series has no samples.
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// Iterates over `(time, value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (f64, f64)> + '_ {
        self.times.iter().copied().zip(self.values.iter().copied())
    }

    /// The last sample, if any.
    pub fn last(&self) -> Option<(f64, f64)> {
        Some((*self.times.last()?, *self.values.last()?))
    }

    /// The value in effect at time `t` under step (sample-and-hold)
    /// semantics: the value of the latest sample with `time <= t`.
    /// Returns `None` before the first sample.
    pub fn value_at(&self, t: f64) -> Option<f64> {
        self.times
            .partition_point(|&x| x <= t)
            .checked_sub(1)
            .map(|i| self.values[i])
    }

    /// Resamples onto a regular grid `[start, end]` with the given step,
    /// using step semantics; times before the first sample yield the first
    /// sample's value. Useful to align several series for plotting.
    ///
    /// # Panics
    ///
    /// Panics if `step <= 0.0` or `end < start` or the series is empty.
    pub fn resample(&self, start: f64, end: f64, step: f64) -> TimeSeries {
        assert!(step > 0.0, "resample step must be positive");
        assert!(end >= start, "resample range must be non-decreasing");
        assert!(!self.is_empty(), "cannot resample an empty series");
        let mut out = TimeSeries::new(self.name.clone());
        let mut t = start;
        while t <= end + step * 1e-9 {
            let v = self.value_at(t).unwrap_or(self.values[0]);
            out.push(t, v);
            t += step;
        }
        out
    }

    /// Drops every sample with `time < cutoff`, keeping the series a
    /// bounded sliding window. Used by live samplers (the monitor →
    /// timeseries bridge) that push forever but only retain a recent
    /// window. Returns the number of samples dropped.
    pub fn trim_before(&mut self, cutoff: f64) -> usize {
        let keep_from = self.times.partition_point(|&t| t < cutoff);
        if keep_from > 0 {
            self.times.drain(..keep_from);
            self.values.drain(..keep_from);
        }
        keep_from
    }

    /// Minimum and maximum values over the series, if non-empty.
    pub fn value_range(&self) -> Option<(f64, f64)> {
        if self.is_empty() {
            return None;
        }
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for &v in &self.values {
            lo = lo.min(v);
            hi = hi.max(v);
        }
        Some((lo, hi))
    }

    /// Minimum and maximum times over the series, if non-empty.
    pub fn time_range(&self) -> Option<(f64, f64)> {
        if self.is_empty() {
            None
        } else {
            Some((self.times[0], *self.times.last().unwrap()))
        }
    }
}

impl Extend<(f64, f64)> for TimeSeries {
    fn extend<T: IntoIterator<Item = (f64, f64)>>(&mut self, iter: T) {
        for (t, v) in iter {
            self.push(t, v);
        }
    }
}

/// A piecewise-constant counter sampled on demand.
///
/// The simulator updates quantities such as "total system capacity" whenever
/// an event changes them; `StepSeries` stores every change point and can be
/// converted to a [`TimeSeries`] snapshot on a fixed grid for reporting.
///
/// # Examples
///
/// ```
/// use p2ps_metrics::StepSeries;
///
/// let mut cap = StepSeries::new("capacity", 100.0);
/// cap.set(5.0, 101.0);
/// cap.add(7.0, 2.0);
/// assert_eq!(cap.current(), 103.0);
/// assert_eq!(cap.value_at(6.0), 101.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StepSeries {
    inner: TimeSeries,
    initial: f64,
}

impl StepSeries {
    /// Creates a step series with an initial value in effect from `-inf`.
    pub fn new(name: impl Into<String>, initial: f64) -> Self {
        StepSeries {
            inner: TimeSeries::new(name),
            initial,
        }
    }

    /// The display name.
    pub fn name(&self) -> &str {
        self.inner.name()
    }

    /// Records that the value changed to `value` at time `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t` is earlier than the previous change point.
    pub fn set(&mut self, t: f64, value: f64) {
        self.inner.push(t, value);
    }

    /// Records a relative change at time `t`.
    pub fn add(&mut self, t: f64, delta: f64) {
        let v = self.current() + delta;
        self.set(t, v);
    }

    /// The value currently in effect (after the last change).
    pub fn current(&self) -> f64 {
        self.inner.last().map(|(_, v)| v).unwrap_or(self.initial)
    }

    /// The value in effect at time `t`.
    pub fn value_at(&self, t: f64) -> f64 {
        self.inner.value_at(t).unwrap_or(self.initial)
    }

    /// Number of recorded change points.
    pub fn change_count(&self) -> usize {
        self.inner.len()
    }

    /// Snapshots onto a regular grid as a [`TimeSeries`].
    ///
    /// # Panics
    ///
    /// Panics if `step <= 0.0` or `end < start`.
    pub fn sample_grid(&self, start: f64, end: f64, step: f64) -> TimeSeries {
        assert!(step > 0.0, "sample_grid step must be positive");
        assert!(end >= start, "sample_grid range must be non-decreasing");
        let mut out = TimeSeries::new(self.inner.name().to_owned());
        let mut t = start;
        while t <= end + step * 1e-9 {
            out.push(t, self.value_at(t));
            t += step;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_iterate() {
        let mut s = TimeSeries::new("x");
        s.extend([(0.0, 1.0), (1.0, 2.0), (2.0, 3.0)]);
        assert_eq!(s.len(), 3);
        let collected: Vec<_> = s.iter().collect();
        assert_eq!(collected, vec![(0.0, 1.0), (1.0, 2.0), (2.0, 3.0)]);
        assert_eq!(s.name(), "x");
    }

    #[test]
    #[should_panic(expected = "out of order")]
    fn out_of_order_push_panics() {
        let mut s = TimeSeries::new("x");
        s.push(1.0, 0.0);
        s.push(0.5, 0.0);
    }

    #[test]
    fn equal_time_pushes_are_allowed() {
        let mut s = TimeSeries::new("x");
        s.push(1.0, 1.0);
        s.push(1.0, 2.0);
        // step semantics: the later sample wins
        assert_eq!(s.value_at(1.0), Some(2.0));
    }

    #[test]
    fn value_at_step_semantics() {
        let mut s = TimeSeries::new("x");
        s.extend([(1.0, 10.0), (3.0, 30.0)]);
        assert_eq!(s.value_at(0.0), None);
        assert_eq!(s.value_at(1.0), Some(10.0));
        assert_eq!(s.value_at(2.9), Some(10.0));
        assert_eq!(s.value_at(3.0), Some(30.0));
        assert_eq!(s.value_at(100.0), Some(30.0));
    }

    #[test]
    fn resample_grid() {
        let mut s = TimeSeries::new("x");
        s.extend([(0.0, 0.0), (10.0, 10.0)]);
        let r = s.resample(0.0, 20.0, 5.0);
        let collected: Vec<_> = r.iter().collect();
        assert_eq!(
            collected,
            vec![
                (0.0, 0.0),
                (5.0, 0.0),
                (10.0, 10.0),
                (15.0, 10.0),
                (20.0, 10.0)
            ]
        );
    }

    #[test]
    fn trim_before_keeps_a_sliding_window() {
        let mut s = TimeSeries::new("x");
        s.extend([(0.0, 1.0), (1.0, 2.0), (2.0, 3.0), (3.0, 4.0)]);
        assert_eq!(s.trim_before(2.0), 2, "samples strictly before stay out");
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![(2.0, 3.0), (3.0, 4.0)]);
        assert_eq!(s.trim_before(1.0), 0, "already trimmed past the cutoff");
        // Pushing after a trim still works (time order is preserved).
        s.push(4.0, 5.0);
        assert_eq!(s.len(), 3);
        // Trimming everything empties the series without breaking it.
        assert_eq!(s.trim_before(100.0), 3);
        assert!(s.is_empty());
        s.push(200.0, 1.0);
        assert_eq!(s.last(), Some((200.0, 1.0)));
    }

    #[test]
    fn ranges() {
        let mut s = TimeSeries::new("x");
        assert_eq!(s.value_range(), None);
        assert_eq!(s.time_range(), None);
        s.extend([(0.0, 5.0), (2.0, -1.0), (4.0, 3.0)]);
        assert_eq!(s.value_range(), Some((-1.0, 5.0)));
        assert_eq!(s.time_range(), Some((0.0, 4.0)));
    }

    #[test]
    fn step_series_tracks_changes() {
        let mut s = StepSeries::new("cap", 100.0);
        assert_eq!(s.current(), 100.0);
        assert_eq!(s.value_at(-5.0), 100.0);
        s.add(1.0, 1.0);
        s.add(2.0, 0.5);
        assert_eq!(s.current(), 101.5);
        assert_eq!(s.value_at(1.5), 101.0);
        assert_eq!(s.change_count(), 2);
    }

    #[test]
    fn step_series_sample_grid() {
        let mut s = StepSeries::new("cap", 0.0);
        s.set(1.0, 5.0);
        let g = s.sample_grid(0.0, 2.0, 1.0);
        let collected: Vec<_> = g.iter().collect();
        assert_eq!(collected, vec![(0.0, 0.0), (1.0, 5.0), (2.0, 5.0)]);
    }
}
