//! Multi-series ASCII line plots.

use crate::TimeSeries;

/// Renders one or more [`TimeSeries`] as an ASCII scatter/line chart, used
/// by the experiment binaries to reproduce the paper's figures in a
/// terminal.
///
/// Each series is drawn with its own glyph (`*`, `+`, `o`, `x`, …); where
/// series overlap the glyph of the earlier-added series wins. Axes are
/// labelled with the value range and the time range.
///
/// # Examples
///
/// ```
/// use p2ps_metrics::{AsciiPlot, TimeSeries};
///
/// let mut s = TimeSeries::new("capacity");
/// s.push(0.0, 0.0);
/// s.push(10.0, 100.0);
/// let plot = AsciiPlot::new("Fig 4", 40, 10).series(&s).render();
/// assert!(plot.contains("Fig 4"));
/// assert!(plot.contains("capacity"));
/// ```
#[derive(Debug, Clone)]
pub struct AsciiPlot<'a> {
    title: String,
    width: usize,
    height: usize,
    series: Vec<&'a TimeSeries>,
    y_min: Option<f64>,
    y_max: Option<f64>,
}

const GLYPHS: &[char] = &['*', '+', 'o', 'x', '#', '@', '%', '&'];

impl<'a> AsciiPlot<'a> {
    /// Creates an empty plot with a title and a canvas size in characters.
    ///
    /// # Panics
    ///
    /// Panics if `width < 8` or `height < 3` (too small to draw anything).
    pub fn new(title: impl Into<String>, width: usize, height: usize) -> Self {
        assert!(width >= 8, "plot width must be at least 8");
        assert!(height >= 3, "plot height must be at least 3");
        AsciiPlot {
            title: title.into(),
            width,
            height,
            series: Vec::new(),
            y_min: None,
            y_max: None,
        }
    }

    /// Adds a series (builder style).
    pub fn series(mut self, s: &'a TimeSeries) -> Self {
        self.series.push(s);
        self
    }

    /// Pins the y-axis range instead of auto-scaling.
    pub fn y_range(mut self, min: f64, max: f64) -> Self {
        self.y_min = Some(min);
        self.y_max = Some(max);
        self
    }

    /// Renders the plot. Empty series are skipped; with no drawable series
    /// the output contains only the title and a note.
    pub fn render(&self) -> String {
        let drawable: Vec<&TimeSeries> = self
            .series
            .iter()
            .copied()
            .filter(|s| !s.is_empty())
            .collect();
        let mut out = String::new();
        out.push_str(&self.title);
        out.push('\n');
        if drawable.is_empty() {
            out.push_str("(no data)\n");
            return out;
        }

        let mut t_lo = f64::INFINITY;
        let mut t_hi = f64::NEG_INFINITY;
        let mut v_lo = f64::INFINITY;
        let mut v_hi = f64::NEG_INFINITY;
        for s in &drawable {
            let (a, b) = s.time_range().expect("non-empty");
            let (c, d) = s.value_range().expect("non-empty");
            t_lo = t_lo.min(a);
            t_hi = t_hi.max(b);
            v_lo = v_lo.min(c);
            v_hi = v_hi.max(d);
        }
        if let Some(m) = self.y_min {
            v_lo = m;
        }
        if let Some(m) = self.y_max {
            v_hi = m;
        }
        if (t_hi - t_lo).abs() < f64::EPSILON {
            t_hi = t_lo + 1.0;
        }
        if (v_hi - v_lo).abs() < f64::EPSILON {
            v_hi = v_lo + 1.0;
        }

        let mut canvas = vec![vec![' '; self.width]; self.height];
        for (si, s) in drawable.iter().enumerate() {
            let glyph = GLYPHS[si % GLYPHS.len()];
            for (t, v) in s.iter() {
                let x = ((t - t_lo) / (t_hi - t_lo) * (self.width - 1) as f64).round() as usize;
                let v = v.clamp(v_lo, v_hi);
                let y = ((v - v_lo) / (v_hi - v_lo) * (self.height - 1) as f64).round() as usize;
                let row = self.height - 1 - y;
                let x = x.min(self.width - 1);
                if canvas[row][x] == ' ' {
                    canvas[row][x] = glyph;
                }
            }
        }

        let y_label_hi = format!("{v_hi:.1}");
        let y_label_lo = format!("{v_lo:.1}");
        let label_w = y_label_hi.len().max(y_label_lo.len());
        for (i, row) in canvas.iter().enumerate() {
            let label = if i == 0 {
                format!("{y_label_hi:>label_w$}")
            } else if i == self.height - 1 {
                format!("{y_label_lo:>label_w$}")
            } else {
                " ".repeat(label_w)
            };
            out.push_str(&label);
            out.push('|');
            out.extend(row.iter());
            out.push('\n');
        }
        out.push_str(&" ".repeat(label_w));
        out.push('+');
        out.push_str(&"-".repeat(self.width));
        out.push('\n');
        out.push_str(&format!(
            "{}t: {:.1} .. {:.1}\n",
            " ".repeat(label_w + 1),
            t_lo,
            t_hi
        ));
        for (si, s) in drawable.iter().enumerate() {
            out.push_str(&format!("  {} {}\n", GLYPHS[si % GLYPHS.len()], s.name()));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(name: &str, pts: &[(f64, f64)]) -> TimeSeries {
        let mut s = TimeSeries::new(name);
        for &(t, v) in pts {
            s.push(t, v);
        }
        s
    }

    #[test]
    fn renders_title_and_legend() {
        let s = series("dac", &[(0.0, 0.0), (1.0, 1.0)]);
        let p = AsciiPlot::new("Capacity", 20, 5).series(&s).render();
        assert!(p.contains("Capacity"));
        assert!(p.contains("* dac"));
        assert!(p.contains("t: 0.0 .. 1.0"));
    }

    #[test]
    fn empty_series_handled() {
        let s = series("x", &[]);
        let p = AsciiPlot::new("T", 20, 5).series(&s).render();
        assert!(p.contains("(no data)"));
    }

    #[test]
    fn constant_series_does_not_divide_by_zero() {
        let s = series("c", &[(0.0, 5.0), (1.0, 5.0)]);
        let p = AsciiPlot::new("T", 20, 5).series(&s).render();
        assert!(p.contains('*'));
    }

    #[test]
    fn two_series_use_distinct_glyphs() {
        let a = series("a", &[(0.0, 0.0), (1.0, 1.0)]);
        let b = series("b", &[(0.0, 1.0), (1.0, 0.0)]);
        let p = AsciiPlot::new("T", 20, 5).series(&a).series(&b).render();
        assert!(p.contains("* a"));
        assert!(p.contains("+ b"));
        assert!(p.contains('+'));
    }

    #[test]
    fn pinned_y_range_clamps() {
        let s = series("s", &[(0.0, -100.0), (1.0, 100.0)]);
        let p = AsciiPlot::new("T", 20, 5)
            .series(&s)
            .y_range(0.0, 10.0)
            .render();
        assert!(p.contains("10.0"));
        assert!(p.contains("0.0"));
    }

    #[test]
    #[should_panic(expected = "width must be at least")]
    fn tiny_plot_panics() {
        let _ = AsciiPlot::new("T", 2, 5);
    }
}
