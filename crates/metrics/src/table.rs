//! Aligned text tables.

/// A simple aligned text table for experiment output (paper Table 1).
///
/// Columns are sized to their widest cell; the first row added with
/// [`Table::new`] is the header and is separated from the body by a rule.
///
/// # Examples
///
/// ```
/// use p2ps_metrics::Table;
///
/// let mut t = Table::new(["Class", "DACp2p", "NDACp2p"]);
/// t.row(["1", "1.77", "3.73"]);
/// t.row(["2", "1.93", "3.75"]);
/// let text = t.render();
/// assert!(text.contains("Class"));
/// assert!(text.lines().count() >= 4);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given header cells.
    pub fn new<I, S>(header: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a body row.
    ///
    /// # Panics
    ///
    /// Panics if the row has a different number of cells than the header.
    pub fn row<I, S>(&mut self, cells: I) -> &mut Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(
            row.len(),
            self.header.len(),
            "row width {} does not match header width {}",
            row.len(),
            self.header.len()
        );
        self.rows.push(row);
        self
    }

    /// Number of body rows.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// Renders the table as text with a header rule.
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(ncols) {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(cell);
                for _ in cell.chars().count()..widths[i] {
                    line.push(' ');
                }
            }
            line.trim_end().to_owned()
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols.saturating_sub(1));
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Renders the table as CSV (no quoting; cells must not contain commas).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.header.join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }
}

impl std::fmt::Display for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(["a", "long-header"]);
        t.row(["wide-cell", "1"]);
        let text = t.render();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        // header line pads "a" to the width of "wide-cell"
        assert!(lines[0].starts_with("a        "));
        assert!(lines[1].chars().all(|c| c == '-'));
    }

    #[test]
    #[should_panic(expected = "does not match header width")]
    fn mismatched_row_panics() {
        let mut t = Table::new(["a", "b"]);
        t.row(["only-one"]);
    }

    #[test]
    fn csv_output() {
        let mut t = Table::new(["x", "y"]);
        t.row(["1", "2"]).row(["3", "4"]);
        assert_eq!(t.to_csv(), "x,y\n1,2\n3,4\n");
        assert_eq!(t.row_count(), 2);
    }

    #[test]
    fn display_matches_render() {
        let mut t = Table::new(["h"]);
        t.row(["v"]);
        assert_eq!(format!("{t}"), t.render());
    }
}
