//! Determinism properties of the capacity-amplification engine.
//!
//! The headline guarantee: one `u64` seed fully determines the trace.
//! The FNV-1a digest over the per-epoch sorted trace records must be
//! bit-identical no matter how the peer population is sharded or how
//! many worker threads step the shards. These tests pin that property
//! over 64 seeds, plus the basic shape of the reported curves.

use p2ps_sim::{AmpConfig, AmpConfigBuilder, AmpEngine, ArrivalProcess};

/// A small but non-degenerate population: every item has four seed
/// suppliers, so sessions assemble, capacity amplifies, and the trace
/// exercises every record kind.
fn base_config() -> AmpConfigBuilder {
    let mut builder = AmpConfig::builder();
    builder
        .requesting_peers(400)
        .seed_suppliers(8)
        .catalog_items(2)
        .arrival_window_secs(1_800)
        .horizon_secs(2 * 3_600)
        .epoch_secs(60);
    builder
}

fn hash_with(builder: &AmpConfigBuilder, shards: u32, threads: usize, seed: u64) -> u64 {
    let mut b = builder.clone();
    b.shards(shards).threads(threads);
    AmpEngine::new(b.build().unwrap(), seed).run().trace_hash
}

/// The tentpole property: for 64 consecutive seeds, the trace hash is
/// identical at 1, 2, and 4 shards. Sharding is an implementation
/// detail of the engine, never an observable of the model.
#[test]
fn trace_hash_is_shard_count_invariant_over_64_seeds() {
    let builder = base_config();
    for seed in 0..64u64 {
        let h1 = hash_with(&builder, 1, 1, seed);
        let h2 = hash_with(&builder, 2, 1, seed);
        let h4 = hash_with(&builder, 4, 1, seed);
        assert_eq!(h1, h2, "seed {seed}: 1-shard vs 2-shard hash diverged");
        assert_eq!(h1, h4, "seed {seed}: 1-shard vs 4-shard hash diverged");
    }
}

/// Worker threads only change wall-clock time, never the trace: at a
/// fixed shard count the digest is identical at 1, 2, and 4 threads.
#[test]
fn trace_hash_is_thread_count_invariant() {
    let builder = base_config();
    for seed in [3u64, 17, 42, 1_000_003] {
        let h1 = hash_with(&builder, 4, 1, seed);
        let h2 = hash_with(&builder, 4, 2, seed);
        let h4 = hash_with(&builder, 4, 4, seed);
        assert_eq!(h1, h2, "seed {seed}: 1-thread vs 2-thread hash diverged");
        assert_eq!(h1, h4, "seed {seed}: 1-thread vs 4-thread hash diverged");
    }
}

/// Different seeds must *not* collide: the digest actually depends on
/// the trace, not just the configuration.
#[test]
fn distinct_seeds_produce_distinct_traces() {
    let builder = base_config();
    let mut hashes: Vec<u64> = (0..16u64)
        .map(|seed| hash_with(&builder, 2, 1, seed))
        .collect();
    hashes.sort_unstable();
    hashes.dedup();
    assert_eq!(hashes.len(), 16, "seed collision in trace hashes");
}

/// Without churn the capacity curve is non-decreasing, starts at the
/// seed capacity, and the fold crossings are consistent with it.
#[test]
fn capacity_curve_and_fold_crossings_are_consistent() {
    let report = AmpEngine::new(base_config().build().unwrap(), 9).run();

    assert!(report.admits > 0, "population never assembled a session");
    assert_eq!(
        report.capacity_curve.first().map(|&(t, _)| t),
        Some(0),
        "curve must start at t = 0"
    );
    assert_eq!(report.capacity_curve[0].1, report.initial_capacity_raw);
    assert!(
        report
            .capacity_curve
            .windows(2)
            .all(|w| w[0].1 <= w[1].1 && w[0].0 < w[1].0),
        "churn-free capacity evolution must be non-decreasing in time"
    );
    assert_eq!(
        report.capacity_curve.last().map(|&(_, c)| c),
        Some(report.final_capacity_raw)
    );

    // Crossings come out sorted by factor and by time, and each one is
    // honest: capacity at that instant really is >= factor x seeds.
    let mut prev_t = 0;
    let mut prev_f = 0;
    for c in &report.fold_crossings {
        assert!(c.factor > prev_f && c.factor.is_power_of_two());
        assert!(c.at_secs >= prev_t);
        let at_crossing = report
            .capacity_curve
            .iter()
            .rev()
            .find(|&&(t, _)| t <= c.at_secs)
            .map(|&(_, cap)| cap)
            .unwrap();
        assert!(
            at_crossing as i128 >= report.initial_capacity_raw as i128 * i128::from(c.factor),
            "crossing {}x recorded at t={} but capacity there is {}",
            c.factor,
            c.at_secs,
            at_crossing
        );
        prev_t = c.at_secs;
        prev_f = c.factor;
    }

    // The rejection curve accounts for every attempt exactly once.
    let (attempts, rejects) = report
        .rejection_curve
        .iter()
        .fold((0u64, 0u64), |(a, r), &(_, wa, wr)| (a + wa, r + wr));
    assert_eq!(attempts, report.attempts);
    assert_eq!(rejects, report.rejects);
}

/// The acceptance-criterion smoke run: one million flash-crowd peers
/// on 4 threads in under a minute. Run in nightly CI via
/// `cargo test -p p2ps-sim --release -- --ignored million_peer`.
#[test]
#[ignore = "million-peer smoke: run explicitly with --ignored in release mode"]
fn million_peer_flash_crowd_under_a_minute() {
    let mut builder = AmpConfig::builder();
    builder
        .requesting_peers(1_000_000)
        .seed_suppliers(512)
        .catalog_items(64)
        .process(ArrivalProcess::flash_crowd())
        .arrival_window_secs(3_600)
        .horizon_secs(6 * 3_600)
        .epoch_secs(60)
        .shards(64)
        .threads(4);
    let report = AmpEngine::new(builder.build().unwrap(), 1_000_000).run();

    assert!(report.admits > 0);
    assert!(
        report.amplification() > 2.0,
        "flash crowd failed to amplify"
    );
    assert!(
        report.elapsed().as_secs() < 60,
        "10^6-peer flash crowd took {:?} (budget: 60 s on 4 threads)",
        report.elapsed()
    );
}
