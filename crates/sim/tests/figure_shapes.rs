//! Mid-scale checks that the *shapes* of the paper's figures hold — the
//! same comparisons the full-scale harness prints, asserted at a size
//! that runs in seconds even in debug builds.

use p2ps_core::admission::Protocol;
use p2ps_sim::{ArrivalPattern, SimConfig, SimConfigBuilder, Simulation};

fn base() -> SimConfigBuilder {
    let mut b = SimConfig::builder();
    b.seed_suppliers(10)
        .requesting_peers(3_000)
        .arrival_window_hours(24)
        .duration_hours(48)
        .pattern(ArrivalPattern::Ramp);
    b
}

#[test]
fn fig4_shape_dac_amplifies_faster() {
    let dac = Simulation::new(base().protocol(Protocol::Dac).build().unwrap(), 42).run();
    let ndac = Simulation::new(base().protocol(Protocol::Ndac).build().unwrap(), 42).run();
    let mid = 16.0;
    assert!(
        dac.capacity().value_at(mid).unwrap() > 1.3 * ndac.capacity().value_at(mid).unwrap(),
        "DAC {} vs NDAC {} at {mid}h",
        dac.capacity().value_at(mid).unwrap(),
        ndac.capacity().value_at(mid).unwrap()
    );
    // DAC converges much higher by the end at this reduced scale (the
    // paper-scale harness reaches ≥95 % for both; at 3,000 peers over
    // 48 h NDAC is still far behind — the gap the figure is about).
    let max = dac.config().expected_max_capacity();
    assert!(dac.final_capacity() > 0.75 * max);
    assert!(dac.final_capacity() > 1.5 * ndac.final_capacity());
}

#[test]
fn fig5_shape_admission_rates_ordered_by_class_under_dac() {
    let dac = Simulation::new(base().build().unwrap(), 42).run();
    let at = |k: u8, t: f64| dac.admission_rate().class(k).value_at(t).unwrap_or(0.0);
    // During the growth phase the rates are strictly ordered.
    let t = 16.0;
    assert!(
        at(1, t) > at(2, t) && at(2, t) > at(3, t) && at(3, t) > at(4, t),
        "rates at {t}h: {} / {} / {} / {}",
        at(1, t),
        at(2, t),
        at(3, t),
        at(4, t)
    );
}

#[test]
fn fig8a_shape_m4_collapses_capacity_growth() {
    let m4 = Simulation::new(base().m(4).build().unwrap(), 42).run();
    let m8 = Simulation::new(base().m(8).build().unwrap(), 42).run();
    let m16 = Simulation::new(base().m(16).build().unwrap(), 42).run();
    let end = 48.0;
    let c4 = m4.capacity().value_at(end).unwrap();
    let c8 = m8.capacity().value_at(end).unwrap();
    let c16 = m16.capacity().value_at(end).unwrap();
    assert!(c4 < 0.8 * c8, "M=4 ({c4}) should trail M=8 ({c8}) badly");
    assert!(
        (c16 - c8).abs() / c8 < 0.25,
        "M=16 ({c16}) should add little over M=8 ({c8})"
    );
}

#[test]
fn fig9_shape_constant_backoff_wins() {
    let e1 = Simulation::new(base().e_bkf(1).build().unwrap(), 42).run();
    let e4 = Simulation::new(base().e_bkf(4).build().unwrap(), 42).run();
    assert!(
        e1.final_overall_admission_rate() >= e4.final_overall_admission_rate(),
        "E_bkf=1 ({:.1}%) must beat E_bkf=4 ({:.1}%)",
        e1.final_overall_admission_rate(),
        e4.final_overall_admission_rate()
    );
    assert!(
        e1.attempts() > e4.attempts(),
        "constant backoff retries more aggressively"
    );
}

#[test]
fn fig7_shape_differentiation_relaxes_once_demand_stops() {
    let mut b = base();
    b.pattern(ArrivalPattern::PeriodicBursts);
    let report = Simulation::new(b.build().unwrap(), 42).run();
    // At the end every supplier class favors everyone (value 4).
    for k in 1..=4u8 {
        let (_, last) = report.lowest_favored().class(k).last().unwrap();
        assert!(
            last > 3.9,
            "supplier class {k} ended at lowest-favored {last}"
        );
    }
    // Early on, class-1 suppliers are the most selective.
    let early_mean = |k: u8| {
        let pts: Vec<f64> = report
            .lowest_favored()
            .class(k)
            .iter()
            .filter(|(t, _)| *t <= 12.0)
            .map(|(_, v)| v)
            .collect();
        pts.iter().sum::<f64>() / pts.len().max(1) as f64
    };
    assert!(
        early_mean(1) < early_mean(4),
        "class-1 suppliers ({:.2}) should favor fewer classes than class-4 ({:.2})",
        early_mean(1),
        early_mean(4)
    );
}

#[test]
fn table1_shape_rejections_ordered_and_dac_dominates() {
    let dac = Simulation::new(base().build().unwrap(), 42).run();
    let ndac = Simulation::new(base().protocol(Protocol::Ndac).build().unwrap(), 42).run();
    let d1 = dac.avg_rejections(1).unwrap();
    let d4 = dac.avg_rejections(4).unwrap();
    assert!(d1 < d4, "DAC: class 1 ({d1:.2}) < class 4 ({d4:.2})");
    let n: Vec<f64> = (1..=4).map(|k| ndac.avg_rejections(k).unwrap()).collect();
    let total_d: f64 = (1..=4).map(|k| dac.avg_rejections(k).unwrap()).sum();
    let total_n: f64 = n.iter().sum();
    assert!(
        total_d < total_n,
        "DAC total {total_d:.2} vs NDAC {total_n:.2}"
    );
}
