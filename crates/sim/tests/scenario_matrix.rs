//! Tier-1 smoke run of the policy × scenario matrix.
//!
//! Fast (sub-second), fully deterministic from one seed, and pinned on
//! the PR's acceptance criterion: the §3 `OTSp2p` assignment dominates
//! the `RandomBaseline` on in-time startup ratio in *every* VoD
//! scenario, and the wiring of all four policies across all five
//! scenarios cannot silently rot.

use p2ps_sim::{CellMetric, ScenarioConfig, ScenarioMatrix};

const SEED: u64 = 0xbeef;

fn matrix() -> ScenarioMatrix {
    let mut m = ScenarioMatrix::standard(SEED);
    m.config(ScenarioConfig {
        sessions: 24,
        total_segments: 48,
        startup_window: 8,
    });
    m
}

#[test]
fn matrix_is_deterministic_from_one_seed() {
    let a = matrix().run();
    let b = matrix().run();
    assert_eq!(a, b, "same seed must reproduce the same matrix");
}

#[test]
fn every_policy_runs_every_scenario() {
    let report = matrix().run();
    assert_eq!(report.policies().len(), 4, "≥4 policies");
    assert_eq!(report.scenarios().len(), 6, "≥6 scenarios");
    for policy in report.policies() {
        for scenario in report.scenarios() {
            let cell = report
                .cell(policy, scenario)
                .unwrap_or_else(|| panic!("missing cell {policy} × {scenario}"));
            assert_eq!(cell.sessions(), 24);
            assert!(
                cell.completion_ratio() > 0.9,
                "{policy} × {scenario}: completion {}",
                cell.completion_ratio()
            );
        }
    }
}

#[test]
fn comparison_table_renders() {
    let report = matrix().run();
    let table = report.table(CellMetric::InTimeStartupRatio);
    let text = table.render();
    for name in ["otsp2p", "sequential-window", "rarest-first", "random"] {
        assert!(text.contains(name), "table misses {name}:\n{text}");
    }
    for scenario in [
        "steady",
        "seek",
        "departure",
        "partial-file",
        "flash-crowd",
        "seek+departure",
    ] {
        assert!(text.contains(scenario), "table misses {scenario}:\n{text}");
    }
}

#[test]
fn otsp2p_dominates_random_on_in_time_startup() {
    let report = matrix().run();
    let mut strictly_better = 0;
    for scenario in report.scenarios() {
        let opt = report.cell("otsp2p", scenario).unwrap();
        let rnd = report.cell("random", scenario).unwrap();
        assert!(
            opt.in_time_startup_ratio() >= rnd.in_time_startup_ratio(),
            "{scenario}: otsp2p {} < random {}",
            opt.in_time_startup_ratio(),
            rnd.in_time_startup_ratio()
        );
        if opt.in_time_startup_ratio() > rnd.in_time_startup_ratio() {
            strictly_better += 1;
        }
    }
    assert!(
        strictly_better >= 3,
        "otsp2p should be strictly better in most scenarios, was in {strictly_better}/6"
    );
}

#[test]
fn otsp2p_dominates_random_in_the_multi_event_scenario() {
    // The ROADMAP-listed multi-event session (mid-stream seek *and*
    // supplier departure in one session): two replans deep, the §3
    // assignment must still start more sessions in time and deliver at
    // least as much by deadline as the random baseline.
    let report = matrix().run();
    let opt = report.cell("otsp2p", "seek+departure").unwrap();
    let rnd = report.cell("random", "seek+departure").unwrap();
    assert!(
        opt.in_time_startup_ratio() > rnd.in_time_startup_ratio(),
        "seek+departure: otsp2p {} vs random {}",
        opt.in_time_startup_ratio(),
        rnd.in_time_startup_ratio()
    );
    // (On-time ratio is *not* pinned here: after a seek, playback resumes
    // at the target's arrival, so a policy that delivers the target late
    // buys itself looser deadlines for everything after — the metric
    // rewards slowness post-seek. In-time startup is the fair headline,
    // same as the all-scenario dominance pin.)
    assert!(
        opt.mean_seek_latency_slots().is_some(),
        "multi-event cells must report seek latency"
    );
    // Both replans notwithstanding, nothing the viewer needed is lost.
    assert!(opt.completion_ratio() >= 0.999);
}

#[test]
fn otsp2p_attains_the_theorem1_startup_floor_in_steady_state() {
    let report = matrix().run();
    let cell = report.cell("otsp2p", "steady").unwrap();
    assert_eq!(cell.in_time_startup_ratio(), 1.0);
    // Mean startup is the per-session n·δt optimum, so it must sit
    // within the drawn supplier-count range [2, 8].
    let mean = cell.mean_startup_slots().unwrap();
    assert!((2.0..=8.0).contains(&mean), "mean startup {mean}");
}
