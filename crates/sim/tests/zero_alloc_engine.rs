//! Pins the zero-allocation steady path of the amplification engine:
//! on a warmed [`AmpEngine`] (one prior identical run, then `reset`),
//! `execute()` with one worker thread performs **zero** heap
//! allocations — every store, queue, outbox, trace buffer, and curve
//! retained its capacity across the reset.
//!
//! This file deliberately contains exactly ONE test: the counting
//! allocator below is process-global, and the default test harness runs
//! tests on several threads, so any sibling test in the same binary
//! would pollute the count.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use p2ps_sim::{AmpConfig, AmpEngine};

/// System allocator wrapper counting every allocation (and
/// reallocation) — relaxed atomics, no locking.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static A: CountingAlloc = CountingAlloc;

#[test]
fn warmed_engine_executes_without_allocating() {
    let mut builder = AmpConfig::builder();
    builder
        .requesting_peers(3_000)
        .seed_suppliers(16)
        .catalog_items(4)
        .arrival_window_secs(3_600)
        .horizon_secs(4 * 3_600)
        .epoch_secs(60)
        .shards(4)
        .threads(1);
    let config = builder.build().unwrap();
    let seed = 7;

    // Warm-up: the first run grows every buffer to its high-water mark.
    let mut engine = AmpEngine::new(config, seed);
    let warm = engine.run();
    assert!(warm.admits > 0, "warm-up run must exercise the full path");
    assert!(warm.events > 10_000, "population too idle to pin anything");

    // Reset re-seeds the same population without shrinking a single
    // buffer, then the measured replay must stay on the steady path.
    engine.reset(seed);
    let before = ALLOCS.load(Ordering::Relaxed);
    engine.execute();
    let delta = ALLOCS.load(Ordering::Relaxed) - before;
    assert_eq!(
        delta, 0,
        "warmed single-thread execute() of {} events allocated {delta} times \
         (must be zero: all engine state is capacity-preserving)",
        warm.events
    );

    // report() clones freely — that cost sits outside the counted
    // region by design — and the replay is bit-identical to the warm-up.
    let replay = engine.report();
    assert_eq!(replay.trace_hash, warm.trace_hash);
    assert_eq!(replay.events, warm.events);
}
