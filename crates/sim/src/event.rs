//! The event queue driving the simulation.

use p2ps_core::PeerId;

use crate::engine::IndexedHeap;

/// A scheduled simulation event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum EventKind {
    /// A requesting peer issues its first streaming request.
    FirstRequest(PeerId),
    /// A previously rejected requesting peer retries after backoff.
    Retry(PeerId),
    /// An active streaming session completes.
    SessionEnd {
        /// The requesting peer whose session ends.
        requester: PeerId,
    },
    /// A supplying peer departs the system (churn extension; the paper's
    /// model keeps suppliers forever).
    Departure(PeerId),
}

/// Priority queue of `(time, sequence, kind)` — the sequence number makes
/// event ordering total and therefore the simulation deterministic even
/// when events share a timestamp. Backed by the engine's flat
/// [`IndexedHeap`] so a pre-sized run schedules without reallocating.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: IndexedHeap<(u64, u64, EventKind)>,
    seq: u64,
}

impl EventQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue::default()
    }

    /// Schedules `kind` at absolute time `at` (seconds).
    pub fn schedule(&mut self, at: u64, kind: EventKind) {
        self.heap.push((at, self.seq, kind));
        self.seq += 1;
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<(u64, EventKind)> {
        self.heap.pop().map(|(t, _, k)| (t, k))
    }

    /// The time of the next event without removing it.
    #[allow(dead_code)] // used by tests and handy for debugging
    pub fn peek_time(&self) -> Option<u64> {
        self.heap.peek().map(|&(t, _, _)| t)
    }

    /// Number of pending events.
    #[allow(dead_code)] // used by tests and handy for debugging
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    #[allow(dead_code)] // used by tests and handy for debugging
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(30, EventKind::Retry(PeerId::new(1)));
        q.schedule(10, EventKind::FirstRequest(PeerId::new(2)));
        q.schedule(
            20,
            EventKind::SessionEnd {
                requester: PeerId::new(3),
            },
        );
        assert_eq!(q.len(), 3);
        assert_eq!(q.peek_time(), Some(10));
        let order: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|(t, _)| t).collect();
        assert_eq!(order, vec![10, 20, 30]);
        assert!(q.is_empty());
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        q.schedule(5, EventKind::FirstRequest(PeerId::new(1)));
        q.schedule(5, EventKind::FirstRequest(PeerId::new(2)));
        q.schedule(5, EventKind::FirstRequest(PeerId::new(3)));
        let ids: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|(_, k)| match k {
                EventKind::FirstRequest(p) => p.get(),
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(ids, vec![1, 2, 3]);
    }

    #[test]
    fn empty_queue() {
        let mut q = EventQueue::new();
        assert_eq!(q.pop(), None);
        assert_eq!(q.peek_time(), None);
    }
}
