//! Discrete-event simulator reproducing the evaluation of
//! *On Peer-to-Peer Media Streaming* (ICDCS 2002, §5).
//!
//! The paper simulates a system of 50,100 peers: 100 class-1 "seed"
//! suppliers own a 60-minute video; 50,000 requesting peers (classes 1–4
//! at 10/10/40/40 %) issue their first streaming requests over the first
//! 72 hours of a 144-hour run, under four arrival patterns. Admission is
//! controlled by `DACp2p` or the non-differentiated `NDACp2p` baseline.
//!
//! This crate re-creates that experiment as a deterministic discrete-event
//! simulation: given a [`SimConfig`] and a seed, [`Simulation::run`]
//! produces a [`SimReport`] holding every series and table the paper
//! plots — capacity amplification (Fig. 4), per-class accumulative
//! admission rate (Fig. 5), per-class accumulative buffering delay
//! (Fig. 6), rejections before admission (Table 1), the lowest favored
//! class per supplier class (Fig. 7), and the parameter sweeps behind
//! Figs. 8 and 9.
//!
//! Beyond the paper's own workload, the [`ScenarioMatrix`] crosses every
//! [`p2ps_policy::SelectionPolicy`] (the §3 `OTSp2p` assignment plus the
//! BitTorrent-style baselines) with the VoD scenarios of the wider
//! streaming literature — mid-stream seeks, early supplier departure,
//! partially available files, flash crowds — and emits per-cell
//! comparison tables; see [`ScenarioMatrix::standard`].
//!
//! # Examples
//!
//! A scaled-down run (500 peers, 24 simulated hours) finishing in
//! milliseconds:
//!
//! ```
//! use p2ps_sim::{ArrivalPattern, SimConfig, Simulation};
//! use p2ps_core::admission::Protocol;
//!
//! let config = SimConfig::builder()
//!     .requesting_peers(500)
//!     .seed_suppliers(10)
//!     .arrival_window_hours(12)
//!     .duration_hours(24)
//!     .pattern(ArrivalPattern::Constant)
//!     .protocol(Protocol::Dac)
//!     .build()?;
//! let report = Simulation::new(config, 42).run();
//! assert!(report.final_capacity() > 10.0);
//! # Ok::<(), p2ps_sim::ConfigError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod arrivals;
mod config;
mod engine;
mod event;
mod matrix;
mod metrics;
mod report;
mod scenario;
mod system;

pub use arrivals::{ArrivalPattern, ArrivalProcess, PiecewiseRate};
pub use config::{ConfigError, SimConfig, SimConfigBuilder};
pub use engine::{AmpConfig, AmpConfigBuilder, AmpConfigError, AmpEngine, AmpReport, FoldCrossing};
pub use matrix::{CellMetric, CellReport, MatrixReport, ScenarioMatrix};
pub use metrics::ClassSeries;
pub use report::SimReport;
pub use scenario::{ScenarioConfig, SessionOutcome, VodScenario};
pub use system::Simulation;

/// Seconds per simulated minute.
pub const MINUTE: u64 = 60;
/// Seconds per simulated hour.
pub const HOUR: u64 = 3_600;
