//! The result of a simulation run.

use p2ps_metrics::{Reservoir, TimeSeries};

use crate::metrics::{ClassSeries, Collector};
use crate::{SimConfig, HOUR};

/// Everything the paper's evaluation section measures, produced by one
/// [`Simulation::run`](crate::Simulation::run).
///
/// All time axes are in hours (matching the paper's figures); buffering
/// delays are in units of `δt` (the paper's Fig. 6 y-axis) and waiting
/// times in seconds.
#[derive(Debug)]
pub struct SimReport {
    config: SimConfig,
    capacity: TimeSeries,
    admission_rate: ClassSeries,
    overall_admission_rate: TimeSeries,
    buffering_delay: ClassSeries,
    lowest_favored: ClassSeries,
    first_requests: Vec<u64>,
    admitted: Vec<u64>,
    rejections_of_admitted: Vec<u64>,
    waiting_secs_sum: Vec<u64>,
    waiting_samples: Vec<Reservoir>,
    delay_slots_sum: Vec<u64>,
    attempts: u64,
    sessions_completed: u64,
    final_capacity: f64,
}

impl SimReport {
    pub(crate) fn from_collector(config: SimConfig, collector: Collector) -> Self {
        let duration_h = config.duration_secs() as f64 / HOUR as f64;
        let snap_h = config.snapshot_secs() as f64 / HOUR as f64;
        let capacity = collector.capacity.sample_grid(0.0, duration_h, snap_h);
        let lowest_favored =
            ClassSeries::from_series(collector.favored.iter().map(|w| w.to_series()).collect());
        SimReport {
            final_capacity: collector.capacity.current(),
            capacity,
            admission_rate: collector.admission_rate,
            overall_admission_rate: collector.overall_admission_rate,
            buffering_delay: collector.buffering_delay,
            lowest_favored,
            first_requests: collector.first_requests,
            admitted: collector.admitted,
            rejections_of_admitted: collector.rejections_of_admitted,
            waiting_secs_sum: collector.waiting_secs_sum,
            waiting_samples: collector.waiting,
            delay_slots_sum: collector.delay_slots_sum,
            attempts: collector.attempts,
            sessions_completed: collector.sessions_completed,
            config,
        }
    }

    /// The configuration that produced this report.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Total system capacity over time (sessions; hourly grid) — the
    /// paper's Figures 4 and 8.
    pub fn capacity(&self) -> &TimeSeries {
        &self.capacity
    }

    /// Capacity at the end of the run.
    pub fn final_capacity(&self) -> f64 {
        self.final_capacity
    }

    /// Cumulative per-class admission rate (%) over time — Figure 5.
    pub fn admission_rate(&self) -> &ClassSeries {
        &self.admission_rate
    }

    /// Cumulative overall admission rate (%) over time — Figure 9.
    pub fn overall_admission_rate(&self) -> &TimeSeries {
        &self.overall_admission_rate
    }

    /// Cumulative per-class average buffering delay in units of `δt` —
    /// Figure 6.
    pub fn buffering_delay(&self) -> &ClassSeries {
        &self.buffering_delay
    }

    /// Lowest favored requesting-peer class, averaged per supplier class
    /// over 3-hour windows — Figure 7.
    pub fn lowest_favored(&self) -> &ClassSeries {
        &self.lowest_favored
    }

    /// First-time requests per class (index 0 = class 1).
    pub fn first_requests(&self) -> &[u64] {
        &self.first_requests
    }

    /// Admitted peers per class.
    pub fn admitted(&self) -> &[u64] {
        &self.admitted
    }

    /// Total admission attempts (first requests plus retries).
    pub fn attempts(&self) -> u64 {
        self.attempts
    }

    /// Streaming sessions that ran to completion.
    pub fn sessions_completed(&self) -> u64 {
        self.sessions_completed
    }

    /// Average number of rejections before admission for class `k`
    /// (1-based) among admitted peers — the paper's Table 1. `None` if no
    /// peer of that class was admitted.
    pub fn avg_rejections(&self, k: u8) -> Option<f64> {
        let i = (k - 1) as usize;
        if self.admitted[i] == 0 {
            return None;
        }
        Some(self.rejections_of_admitted[i] as f64 / self.admitted[i] as f64)
    }

    /// Average waiting time (seconds) from first request to admission for
    /// class `k` among admitted peers.
    pub fn avg_waiting_secs(&self, k: u8) -> Option<f64> {
        let i = (k - 1) as usize;
        if self.admitted[i] == 0 {
            return None;
        }
        Some(self.waiting_secs_sum[i] as f64 / self.admitted[i] as f64)
    }

    /// The `q`-quantile of the class-`k` waiting time in seconds,
    /// estimated from a 4,096-element uniform reservoir of the admitted
    /// peers' waiting times. `None` if nobody of that class was admitted.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn waiting_quantile_secs(&self, k: u8, q: f64) -> Option<f64> {
        self.waiting_samples[(k - 1) as usize].quantile(q)
    }

    /// Average buffering delay (units of `δt`) for class `k` among
    /// admitted peers, over the whole run.
    pub fn avg_delay_slots(&self, k: u8) -> Option<f64> {
        let i = (k - 1) as usize;
        if self.admitted[i] == 0 {
            return None;
        }
        Some(self.delay_slots_sum[i] as f64 / self.admitted[i] as f64)
    }

    /// Final overall admission rate in percent.
    pub fn final_overall_admission_rate(&self) -> f64 {
        let req: u64 = self.first_requests.iter().sum();
        let adm: u64 = self.admitted.iter().sum();
        if req == 0 {
            0.0
        } else {
            100.0 * adm as f64 / req as f64
        }
    }
}
