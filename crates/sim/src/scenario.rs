//! VoD scenarios: per-session segment-level simulation of one policy.
//!
//! The paper's §5 evaluation treats a streaming session as a black box;
//! the VoD literature (PAPERS.md: *A Review on P2P Video Streaming*,
//! *Analyzing Peer Selection Policies for BitTorrent Multimedia
//! On-Demand Streaming Systems*) opens that box: mid-stream seeks,
//! suppliers departing early, suppliers holding only part of the file,
//! and flash crowds oversubscribing the supplier pool. This module
//! simulates one session at segment granularity under a
//! [`SelectionPolicy`], deterministic down to the slot.
//!
//! Time is measured in slots of `δt` (one segment of playback). A
//! class-`k` supplier transmits one segment per `2^(k-1)` slots; a
//! flash-crowd *load* factor multiplies that cost (its uplink is shared
//! by `load` concurrent sessions). Playback starts after the session's
//! startup budget and consumes one segment per slot; a session "starts
//! in time" when its startup window arrives within the budget — the
//! matrix's headline in-time startup ratio.

use rand::rngs::SmallRng;
use rand::Rng;

use p2ps_policy::{SelectionPolicy, SessionContext, SupplierView};

/// The VoD workload shapes the matrix crosses with every policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum VodScenario {
    /// The paper's own workload: full-file suppliers, nobody leaves.
    SteadyState,
    /// The viewer seeks forward mid-stream; undelivered segments behind
    /// the new playhead are abandoned and the rest replanned.
    MidStreamSeek,
    /// One supplier departs mid-session; its undelivered segments are
    /// replanned across the survivors (the trait's re-decision hook).
    EarlyDeparture,
    /// Suppliers hold only a prefix of the file (peers still streaming
    /// themselves); the policy must respect availability.
    PartialFile,
    /// A flash crowd oversubscribes every supplier: transmissions slow
    /// by a shared load factor, stretching all deadlines.
    FlashCrowd,
    /// The multi-event session: the viewer seeks *and* a supplier departs
    /// within one session (in either order), so the policy's `replan`
    /// hook fires twice against an already-perturbed schedule.
    SeekAndDeparture,
}

impl VodScenario {
    /// Every scenario, in matrix row order.
    pub const ALL: [VodScenario; 6] = [
        VodScenario::SteadyState,
        VodScenario::MidStreamSeek,
        VodScenario::EarlyDeparture,
        VodScenario::PartialFile,
        VodScenario::FlashCrowd,
        VodScenario::SeekAndDeparture,
    ];

    /// A short, stable identifier for tables.
    pub fn name(self) -> &'static str {
        match self {
            VodScenario::SteadyState => "steady",
            VodScenario::MidStreamSeek => "seek",
            VodScenario::EarlyDeparture => "departure",
            VodScenario::PartialFile => "partial-file",
            VodScenario::FlashCrowd => "flash-crowd",
            VodScenario::SeekAndDeparture => "seek+departure",
        }
    }
}

/// Tuning of one scenario-matrix cell.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScenarioConfig {
    /// Sessions simulated per cell.
    pub sessions: usize,
    /// Media length in segments (clamped to at least 8 so every
    /// scenario's event windows are non-empty).
    pub total_segments: u64,
    /// Segments that must arrive within the startup budget for the
    /// session to count as an in-time startup.
    pub startup_window: u64,
}

impl Default for ScenarioConfig {
    /// 32 sessions over a 64-segment file, 8-segment startup window —
    /// the whole default matrix runs in well under a second.
    fn default() -> Self {
        ScenarioConfig {
            sessions: 32,
            total_segments: 64,
            startup_window: 8,
        }
    }
}

/// Supplier class mixes drawn for sessions: every mix sums to exactly
/// `R0` so the §3 periodic assignments apply in the steady state.
const MIXES: &[&[u8]] = &[
    &[2, 2],
    &[2, 3, 3],
    &[2, 3, 4, 4],
    &[3, 3, 3, 3],
    &[2, 4, 4, 4, 4],
    &[3, 3, 4, 4, 4, 4],
    &[2, 3, 4, 5, 5],
    &[4, 4, 4, 4, 4, 4, 4, 4],
];

/// One concrete session world: suppliers, perturbations and the startup
/// budget. Identical across policies so comparisons are fair.
#[derive(Debug, Clone)]
pub(crate) struct SessionWorld {
    suppliers: Vec<SupplierView>,
    total_segments: u64,
    startup_window: u64,
    /// Uniform oversubscription factor (1 = dedicated uplinks).
    load: u64,
    /// In-time startup target in slots (the theoretical optimum for the
    /// session's supplier count under its load).
    budget_slots: u64,
    seek: Option<(u64, u64)>,
    departure: Option<(usize, u64)>,
    seed: u64,
}

impl SessionWorld {
    /// Draws one world for `scenario` from `rng`.
    pub(crate) fn generate(
        scenario: VodScenario,
        cfg: &ScenarioConfig,
        rng: &mut SmallRng,
    ) -> Self {
        let total = cfg.total_segments.max(8);
        let mix = MIXES[rng.gen_range(0..MIXES.len())];
        let mut suppliers: Vec<SupplierView> = mix
            .iter()
            .map(|&k| SupplierView::full(p2ps_core::PeerClass::new(k).expect("valid mix class")))
            .collect();
        let n = suppliers.len() as u64;
        let window = cfg.startup_window.clamp(1, total);
        let load = if scenario == VodScenario::FlashCrowd {
            rng.gen_range(2..=4u64)
        } else {
            1
        };
        // The tightest budget the optimal assignment can always meet:
        // n·δt (Theorem 1) stretched by the shared load, plus the load's
        // skew across the startup window.
        let budget = load * n + (load - 1) * (window - 1);

        let seeks = matches!(
            scenario,
            VodScenario::MidStreamSeek | VodScenario::SeekAndDeparture
        );
        let departs = matches!(
            scenario,
            VodScenario::EarlyDeparture | VodScenario::SeekAndDeparture
        );
        let seek = seeks.then(|| {
            let at = rng.gen_range(budget + total / 8..budget + total / 2);
            let target = rng.gen_range(total / 2..total * 3 / 4);
            (at, target)
        });
        let departure = departs.then(|| {
            let who = rng.gen_range(0..suppliers.len());
            let at = rng.gen_range(budget..budget + total / 2);
            (who, at)
        });
        if scenario == VodScenario::PartialFile {
            // The first supplier is a seed with the whole file; the rest
            // are still mid-download and hold a prefix past the window.
            for s in suppliers.iter_mut().skip(1) {
                let have = rng.gen_range(total / 4..total);
                *s = SupplierView::prefix(s.class, have);
            }
        }
        SessionWorld {
            suppliers,
            total_segments: total,
            startup_window: window,
            load,
            budget_slots: budget,
            seek,
            departure,
            seed: rng.gen(),
        }
    }

    pub(crate) fn budget_slots(&self) -> u64 {
        self.budget_slots
    }
}

/// What one simulated session measured.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionOutcome {
    /// Minimum feasible startup delay in slots, or `None` when the
    /// startup window never fully arrived.
    pub startup_delay_slots: Option<u64>,
    /// Whether the startup window arrived within the session budget.
    pub in_time_startup: bool,
    /// The session's in-time startup target in slots.
    pub budget_slots: u64,
    /// Segments the viewer needed (seeks skip abandoned segments).
    pub needed: u64,
    /// Needed segments that arrived at all.
    pub delivered: u64,
    /// Needed segments that arrived by their playback deadline.
    pub on_time: u64,
    /// Slots between the seek and playback resuming, if the scenario
    /// seeked.
    pub seek_latency_slots: Option<u64>,
}

impl SessionOutcome {
    /// Fraction of needed segments delivered by their deadline.
    pub fn on_time_ratio(&self) -> f64 {
        if self.needed == 0 {
            1.0
        } else {
            self.on_time as f64 / self.needed as f64
        }
    }

    /// Fraction of needed segments delivered at all.
    pub fn completion_ratio(&self) -> f64 {
        if self.needed == 0 {
            1.0
        } else {
            self.delivered as f64 / self.needed as f64
        }
    }
}

/// Per-supplier transmission state during the replay.
struct Lane {
    queue: std::collections::VecDeque<u64>,
    /// Slot at which the supplier finishes its current work.
    next_free: u64,
    cost: u64,
    active: bool,
}

impl Lane {
    /// Delivers queued segments finishing by `until` (all of them when
    /// `None`), recording first arrivals.
    fn drain(&mut self, until: Option<u64>, arrivals: &mut [Option<u64>]) {
        if !self.active {
            return;
        }
        while let Some(&seg) = self.queue.front() {
            let done = self.next_free + self.cost;
            if until.is_some_and(|t| done > t) {
                return;
            }
            self.queue.pop_front();
            self.next_free = done;
            let slot = &mut arrivals[seg as usize];
            if slot.is_none() {
                *slot = Some(done);
            }
        }
    }
}

/// Replays one session world under `policy`, slot by slot.
pub(crate) fn run_session(policy: &dyn SelectionPolicy, world: &SessionWorld) -> SessionOutcome {
    let total = world.total_segments;
    let ctx = SessionContext::new(world.suppliers.clone(), total).with_seed(world.seed);
    let mut arrivals: Vec<Option<u64>> = vec![None; total as usize];
    let mut lanes: Vec<Lane> = world
        .suppliers
        .iter()
        .map(|s| Lane {
            queue: std::collections::VecDeque::new(),
            next_free: 0,
            cost: s.slots_per_segment() * world.load,
            active: true,
        })
        .collect();
    if let Ok(plan) = policy.plan(&ctx) {
        for (lane, queue) in lanes.iter_mut().zip(plan.queues(0, total)) {
            lane.queue = queue.into();
        }
    }

    let mut skipped: Vec<bool> = vec![false; total as usize];
    let mut seek_state: Option<(u64, u64)> = None; // (slot, target)

    // At most one seek and one departure; replay in slot order.
    let mut events: Vec<(u64, bool)> = Vec::new(); // (slot, is_seek)
    if let Some((at, _)) = world.seek {
        events.push((at, true));
    }
    if let Some((_, at)) = world.departure {
        events.push((at, false));
    }
    events.sort_unstable();

    for (at, is_seek) in events {
        for lane in &mut lanes {
            lane.drain(Some(at), &mut arrivals);
        }
        if is_seek {
            let (_, target) = world.seek.expect("seek event implies seek world");
            // Undelivered segments behind the new playhead are abandoned.
            for seg in 0..target {
                if arrivals[seg as usize].is_none() {
                    skipped[seg as usize] = true;
                }
            }
            let remaining: Vec<u64> = (target..total)
                .filter(|&s| arrivals[s as usize].is_none())
                .collect();
            let survivors: Vec<usize> = (0..lanes.len()).filter(|&i| lanes[i].active).collect();
            for lane in &mut lanes {
                lane.queue.clear();
                lane.next_free = lane.next_free.max(at);
            }
            let sub = SessionContext::new(
                survivors.iter().map(|&i| world.suppliers[i]).collect(),
                total,
            )
            .with_playhead(target)
            .with_seed(world.seed);
            if let Ok(plan) = policy.replan(&sub, &remaining) {
                for (j, queue) in plan.queues(target, total).into_iter().enumerate() {
                    lanes[survivors[j]].queue = queue.into();
                }
            }
            seek_state = Some((at, target));
        } else {
            let (who, _) = world
                .departure
                .expect("departure event implies departure world");
            if !lanes[who].active {
                continue;
            }
            lanes[who].active = false;
            let missing: Vec<u64> = lanes[who]
                .queue
                .drain(..)
                .filter(|&s| arrivals[s as usize].is_none())
                .collect();
            let survivors: Vec<usize> = (0..lanes.len()).filter(|&i| lanes[i].active).collect();
            if survivors.is_empty() || missing.is_empty() {
                continue;
            }
            let playhead = missing.iter().copied().min().unwrap_or(0);
            let sub = SessionContext::new(
                survivors.iter().map(|&i| world.suppliers[i]).collect(),
                total,
            )
            .with_playhead(playhead)
            .with_seed(world.seed);
            if let Ok(plan) = policy.replan(&sub, &missing) {
                for (j, queue) in plan.queues(playhead, total).into_iter().enumerate() {
                    // Survivors finish their own schedule first, then
                    // take over the departed supplier's share.
                    lanes[survivors[j]].queue.extend(queue);
                }
            }
        }
    }
    for lane in &mut lanes {
        lane.drain(None, &mut arrivals);
    }

    // Startup: the first `window` segments of the file, judged against
    // the session budget.
    let window = world.startup_window.min(total);
    let startup_delay = (0..window)
        .map(|s| arrivals[s as usize].map(|a| a.saturating_sub(s).max(1)))
        .try_fold(1u64, |acc, d| d.map(|d| acc.max(d)));
    let in_time = startup_delay.is_some_and(|d| d <= world.budget_slots);

    // Deadlines: budget + s before the seek point; after a seek,
    // playback resumes once the target is available and consumes one
    // segment per slot from there.
    let resume = seek_state.map(|(at, target)| {
        let target_arrival = arrivals[target as usize].unwrap_or(u64::MAX);
        (target, target_arrival.max(at))
    });
    let mut needed = 0u64;
    let mut delivered = 0u64;
    let mut on_time = 0u64;
    for seg in 0..total {
        if skipped[seg as usize] {
            continue;
        }
        needed += 1;
        let Some(arrival) = arrivals[seg as usize] else {
            continue;
        };
        delivered += 1;
        let deadline = match resume {
            Some((target, resume_at)) if seg >= target => resume_at.saturating_add(seg - target),
            _ => world.budget_slots + seg,
        };
        if arrival <= deadline {
            on_time += 1;
        }
    }

    SessionOutcome {
        startup_delay_slots: startup_delay,
        in_time_startup: in_time,
        budget_slots: world.budget_slots,
        needed,
        delivered,
        on_time,
        seek_latency_slots: resume.map(|(_, r)| r - seek_state.expect("resume implies seek").0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p2ps_policy::{Otsp2p, RandomBaseline};
    use rand::SeedableRng;

    fn world(scenario: VodScenario, seed: u64) -> SessionWorld {
        let mut rng = SmallRng::seed_from_u64(seed);
        SessionWorld::generate(scenario, &ScenarioConfig::default(), &mut rng)
    }

    #[test]
    fn steady_state_otsp2p_meets_theorem1_budget() {
        for seed in 0..20 {
            let w = world(VodScenario::SteadyState, seed);
            let out = run_session(&Otsp2p, &w);
            assert!(out.in_time_startup, "seed {seed}: {out:?}");
            assert_eq!(out.delivered, out.needed, "seed {seed}");
            assert_eq!(out.on_time, out.needed, "seed {seed}: fully on time");
            assert_eq!(
                out.startup_delay_slots,
                Some(w.suppliers.len() as u64),
                "seed {seed}: Theorem 1 startup n·δt"
            );
        }
    }

    #[test]
    fn flash_crowd_budget_scales_with_load() {
        for seed in 0..20 {
            let w = world(VodScenario::FlashCrowd, seed);
            assert!(w.load >= 2);
            let out = run_session(&Otsp2p, &w);
            assert!(out.in_time_startup, "seed {seed}: {out:?}");
        }
    }

    #[test]
    fn departure_sessions_still_complete() {
        for seed in 0..20 {
            let w = world(VodScenario::EarlyDeparture, seed);
            let out = run_session(&Otsp2p, &w);
            // One supplier is gone but the survivors replan its share —
            // everything still arrives (possibly late).
            assert_eq!(out.delivered, out.needed, "seed {seed}: {out:?}");
        }
    }

    #[test]
    fn seek_reports_latency_and_skips_abandoned_segments() {
        let mut saw_skip = false;
        for seed in 0..20 {
            let w = world(VodScenario::MidStreamSeek, seed);
            let out = run_session(&Otsp2p, &w);
            assert!(out.seek_latency_slots.is_some(), "seed {seed}");
            assert_eq!(out.delivered, out.needed, "seed {seed}");
            saw_skip |= out.needed < w.total_segments;
        }
        assert!(saw_skip, "some seeks must abandon undelivered segments");
    }

    #[test]
    fn partial_files_are_never_assigned_out_of_range() {
        for seed in 0..20 {
            let w = world(VodScenario::PartialFile, seed);
            let out = run_session(&Otsp2p, &w);
            // The seed supplier covers the whole file, so completion
            // must not suffer.
            assert_eq!(out.delivered, out.needed, "seed {seed}: {out:?}");
        }
    }

    #[test]
    fn seek_and_departure_worlds_carry_both_events_and_complete() {
        let mut departure_first = 0;
        let mut seek_first = 0;
        for seed in 0..40 {
            let w = world(VodScenario::SeekAndDeparture, seed);
            let (seek_at, _) = w.seek.expect("multi-event world seeks");
            let (_, depart_at) = w.departure.expect("multi-event world departs");
            if depart_at <= seek_at {
                departure_first += 1;
            } else {
                seek_first += 1;
            }
            let out = run_session(&Otsp2p, &w);
            assert!(out.seek_latency_slots.is_some(), "seed {seed}");
            // Two replans (seek + departure) later, the survivors still
            // cover everything the viewer needs.
            assert_eq!(out.delivered, out.needed, "seed {seed}: {out:?}");
        }
        assert!(
            departure_first > 0 && seek_first > 0,
            "both event orders must occur ({departure_first} vs {seek_first})"
        );
    }

    #[test]
    fn sessions_are_deterministic() {
        let w = world(VodScenario::MidStreamSeek, 7);
        assert_eq!(
            run_session(&RandomBaseline, &w),
            run_session(&RandomBaseline, &w)
        );
    }

    #[test]
    fn outcome_ratios() {
        let out = SessionOutcome {
            startup_delay_slots: Some(4),
            in_time_startup: true,
            budget_slots: 4,
            needed: 10,
            delivered: 8,
            on_time: 6,
            seek_latency_slots: None,
        };
        assert!((out.on_time_ratio() - 0.6).abs() < 1e-12);
        assert!((out.completion_ratio() - 0.8).abs() < 1e-12);
    }
}
