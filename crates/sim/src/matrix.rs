//! The policy × scenario comparison matrix.

use rand::rngs::SmallRng;
use rand::SeedableRng;

use p2ps_metrics::Table;
use p2ps_policy::{Otsp2p, RandomBaseline, RarestFirst, SequentialWindow, SharedPolicy};

use crate::scenario::{run_session, ScenarioConfig, SessionWorld, VodScenario};

/// Which aggregate a [`MatrixReport::table`] renders per cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum CellMetric {
    /// Fraction of sessions whose startup window arrived within the
    /// session budget — the headline comparison.
    InTimeStartupRatio,
    /// Mean achieved startup delay in slots of `δt` (sessions whose
    /// window never arrived are excluded).
    MeanStartupSlots,
    /// Fraction of needed segments delivered by their playback deadline.
    OnTimeRatio,
    /// Fraction of needed segments delivered at all.
    CompletionRatio,
}

impl CellMetric {
    /// Stable metric name for table captions and CSV columns.
    pub fn name(self) -> &'static str {
        match self {
            CellMetric::InTimeStartupRatio => "in-time-startup-ratio",
            CellMetric::MeanStartupSlots => "mean-startup-slots",
            CellMetric::OnTimeRatio => "on-time-ratio",
            CellMetric::CompletionRatio => "completion-ratio",
        }
    }
}

/// Aggregated outcome of one policy under one scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct CellReport {
    policy: String,
    scenario: &'static str,
    sessions: usize,
    in_time_startups: usize,
    startup_sum_slots: u64,
    startup_samples: usize,
    needed: u64,
    delivered: u64,
    on_time: u64,
    seek_latency_sum: u64,
    seek_samples: usize,
}

impl CellReport {
    /// The policy's name.
    pub fn policy(&self) -> &str {
        &self.policy
    }

    /// The scenario's name.
    pub fn scenario(&self) -> &str {
        self.scenario
    }

    /// Sessions simulated in this cell.
    pub fn sessions(&self) -> usize {
        self.sessions
    }

    /// Fraction of sessions starting within their budget.
    pub fn in_time_startup_ratio(&self) -> f64 {
        if self.sessions == 0 {
            return 0.0;
        }
        self.in_time_startups as f64 / self.sessions as f64
    }

    /// Mean achieved startup delay in slots, over sessions whose startup
    /// window fully arrived.
    pub fn mean_startup_slots(&self) -> Option<f64> {
        (self.startup_samples > 0)
            .then(|| self.startup_sum_slots as f64 / self.startup_samples as f64)
    }

    /// Fraction of needed segments arriving by their deadline.
    pub fn on_time_ratio(&self) -> f64 {
        if self.needed == 0 {
            return 1.0;
        }
        self.on_time as f64 / self.needed as f64
    }

    /// Fraction of needed segments arriving at all.
    pub fn completion_ratio(&self) -> f64 {
        if self.needed == 0 {
            return 1.0;
        }
        self.delivered as f64 / self.needed as f64
    }

    /// Mean slots from seek to playback resumption (seek scenario only).
    pub fn mean_seek_latency_slots(&self) -> Option<f64> {
        (self.seek_samples > 0).then(|| self.seek_latency_sum as f64 / self.seek_samples as f64)
    }

    fn metric(&self, metric: CellMetric) -> Option<f64> {
        match metric {
            CellMetric::InTimeStartupRatio => Some(self.in_time_startup_ratio()),
            CellMetric::MeanStartupSlots => self.mean_startup_slots(),
            CellMetric::OnTimeRatio => Some(self.on_time_ratio()),
            CellMetric::CompletionRatio => Some(self.completion_ratio()),
        }
    }
}

/// Every cell of one [`ScenarioMatrix::run`], with table renderers.
#[derive(Debug, Clone, PartialEq)]
pub struct MatrixReport {
    policies: Vec<String>,
    scenarios: Vec<&'static str>,
    cells: Vec<CellReport>,
}

impl MatrixReport {
    /// Policy names in row order.
    pub fn policies(&self) -> &[String] {
        &self.policies
    }

    /// Scenario names in column order.
    pub fn scenarios(&self) -> &[&'static str] {
        &self.scenarios
    }

    /// All cells (row-major: policies × scenarios).
    pub fn cells(&self) -> &[CellReport] {
        &self.cells
    }

    /// The cell for `policy` × `scenario`, if both ran. With duplicate
    /// policy names (e.g. two `SequentialWindow` variants) this returns
    /// the *first* matching row; use [`cells`](Self::cells) (row-major)
    /// to address rows positionally.
    pub fn cell(&self, policy: &str, scenario: &str) -> Option<&CellReport> {
        self.cells
            .iter()
            .find(|c| c.policy == policy && c.scenario == scenario)
    }

    /// Renders one metric as a policies × scenarios comparison table.
    /// Rows are addressed positionally, so duplicate policy names still
    /// render their own results.
    pub fn table(&self, metric: CellMetric) -> Table {
        let mut header = vec![format!("policy ({})", metric.name())];
        header.extend(self.scenarios.iter().map(|s| (*s).to_owned()));
        let mut table = Table::new(header);
        for (policy, row_cells) in self
            .policies
            .iter()
            .zip(self.cells.chunks(self.scenarios.len()))
        {
            let mut row = vec![policy.clone()];
            for cell in row_cells {
                row.push(match cell.metric(metric) {
                    Some(v) => format!("{v:.3}"),
                    None => "-".to_owned(),
                });
            }
            table.row(row);
        }
        table
    }
}

/// Runs every configured [`SelectionPolicy`](p2ps_policy::SelectionPolicy)
/// against every [`VodScenario`], on *identical* per-scenario session
/// worlds derived from one seed, and aggregates a [`CellReport`] per
/// combination.
///
/// # Examples
///
/// ```
/// use p2ps_sim::{CellMetric, ScenarioMatrix};
///
/// let report = ScenarioMatrix::standard(42).run();
/// let table = report.table(CellMetric::InTimeStartupRatio);
/// assert!(table.render().contains("otsp2p"));
/// let opt = report.cell("otsp2p", "steady").unwrap();
/// let rnd = report.cell("random", "steady").unwrap();
/// assert!(opt.in_time_startup_ratio() >= rnd.in_time_startup_ratio());
/// ```
#[derive(Debug, Clone)]
pub struct ScenarioMatrix {
    policies: Vec<SharedPolicy>,
    scenarios: Vec<VodScenario>,
    config: ScenarioConfig,
    seed: u64,
}

impl ScenarioMatrix {
    /// An empty matrix over every scenario; add policies before running.
    pub fn new(seed: u64) -> Self {
        ScenarioMatrix {
            policies: Vec::new(),
            scenarios: VodScenario::ALL.to_vec(),
            config: ScenarioConfig::default(),
            seed,
        }
    }

    /// The full comparison the paper's reproduction cares about: the
    /// four built-in policies × every scenario.
    pub fn standard(seed: u64) -> Self {
        let mut m = ScenarioMatrix::new(seed);
        m.add_policy(SharedPolicy::new(Otsp2p))
            .add_policy(SharedPolicy::new(SequentialWindow::default()))
            .add_policy(SharedPolicy::new(RarestFirst))
            .add_policy(SharedPolicy::new(RandomBaseline));
        m
    }

    /// Adds a policy row.
    pub fn add_policy(&mut self, policy: SharedPolicy) -> &mut Self {
        self.policies.push(policy);
        self
    }

    /// Restricts the scenario columns.
    pub fn scenarios(&mut self, scenarios: Vec<VodScenario>) -> &mut Self {
        self.scenarios = scenarios;
        self
    }

    /// Overrides the per-cell tuning.
    pub fn config(&mut self, config: ScenarioConfig) -> &mut Self {
        self.config = config;
        self
    }

    /// Runs the whole matrix. Deterministic: the same seed yields the
    /// same report, and every policy sees identical session worlds.
    pub fn run(&self) -> MatrixReport {
        let policies: Vec<String> = self.policies.iter().map(|p| p.name().to_owned()).collect();
        let scenarios: Vec<&'static str> = self.scenarios.iter().map(|s| s.name()).collect();
        let mut cells = Vec::with_capacity(policies.len() * scenarios.len());
        // Worlds are generated per scenario (not per policy) so every
        // policy row faces the same sessions.
        let mut worlds_by_scenario: Vec<Vec<SessionWorld>> = Vec::with_capacity(scenarios.len());
        for (si, &scenario) in self.scenarios.iter().enumerate() {
            let mut rng = SmallRng::seed_from_u64(
                self.seed ^ (si as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15),
            );
            worlds_by_scenario.push(
                (0..self.config.sessions)
                    .map(|_| SessionWorld::generate(scenario, &self.config, &mut rng))
                    .collect(),
            );
        }
        for policy in &self.policies {
            for (si, &scenario) in self.scenarios.iter().enumerate() {
                let mut cell = CellReport {
                    policy: policy.name().to_owned(),
                    scenario: scenario.name(),
                    sessions: 0,
                    in_time_startups: 0,
                    startup_sum_slots: 0,
                    startup_samples: 0,
                    needed: 0,
                    delivered: 0,
                    on_time: 0,
                    seek_latency_sum: 0,
                    seek_samples: 0,
                };
                for world in &worlds_by_scenario[si] {
                    let out = run_session(&**policy, world);
                    cell.sessions += 1;
                    cell.in_time_startups += usize::from(out.in_time_startup);
                    if let Some(d) = out.startup_delay_slots {
                        cell.startup_sum_slots += d;
                        cell.startup_samples += 1;
                    }
                    cell.needed += out.needed;
                    cell.delivered += out.delivered;
                    cell.on_time += out.on_time;
                    if let Some(l) = out.seek_latency_slots {
                        cell.seek_latency_sum += l;
                        cell.seek_samples += 1;
                    }
                    debug_assert_eq!(out.budget_slots, world.budget_slots());
                }
                cells.push(cell);
            }
        }
        MatrixReport {
            policies,
            scenarios,
            cells,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> ScenarioMatrix {
        let mut m = ScenarioMatrix::standard(1);
        m.config(ScenarioConfig {
            sessions: 8,
            total_segments: 32,
            startup_window: 8,
        });
        m
    }

    #[test]
    fn matrix_covers_every_cell() {
        let report = quick().run();
        assert_eq!(report.policies().len(), 4);
        assert_eq!(report.scenarios().len(), 6);
        assert_eq!(report.cells().len(), 24);
        for p in report.policies() {
            for s in report.scenarios() {
                let cell = report.cell(p, s).unwrap();
                assert_eq!(cell.sessions(), 8);
                assert!(cell.completion_ratio() > 0.0);
            }
        }
        assert!(report.cell("nope", "steady").is_none());
    }

    #[test]
    fn runs_are_deterministic() {
        assert_eq!(quick().run(), quick().run());
    }

    #[test]
    fn tables_render_every_metric() {
        let report = quick().run();
        for metric in [
            CellMetric::InTimeStartupRatio,
            CellMetric::MeanStartupSlots,
            CellMetric::OnTimeRatio,
            CellMetric::CompletionRatio,
        ] {
            let table = report.table(metric);
            assert_eq!(table.row_count(), 4);
            let text = table.render();
            assert!(text.contains(metric.name()), "{text}");
            assert!(text.contains("rarest-first"));
        }
    }

    #[test]
    fn seek_latency_only_in_seeking_scenarios() {
        let report = quick().run();
        for scenario in ["seek", "seek+departure"] {
            let cell = report.cell("otsp2p", scenario).unwrap();
            assert!(cell.mean_seek_latency_slots().is_some(), "{scenario}");
        }
        let steady_cell = report.cell("otsp2p", "steady").unwrap();
        assert!(steady_cell.mean_seek_latency_slots().is_none());
    }
}
