//! Compact struct-of-arrays peer store for the amplification engine.
//!
//! The legacy simulator keeps one heap object per peer (`PeerRec` with a
//! `Vec`-backed admission vector inside a `BTreeMap`); at 10⁶ peers that
//! is millions of small allocations and pointer-chasing on every event.
//! This store flattens every peer field into parallel fixed-width arrays
//! (~40 bytes per peer, zero per-peer allocations) and packs the §4.1
//! admission vector into a single `u64` — one 4-bit exponent nibble per
//! class, valid because exponents are bounded by
//! `PeerClass::MAX - 1 = 15`.

use p2ps_core::admission::Protocol;

/// Sentinel for "no peer" in `u32` peer-id slots.
pub const NONE_U32: u32 = u32::MAX;

/// Peer lifecycle states (paper §2(1): requesting → streaming →
/// supplying, plus the churn extension's departure).
pub mod state {
    /// Waiting to be admitted (pre-arrival or backing off).
    pub const WAITING: u8 = 0;
    /// Streaming from granted suppliers.
    pub const STREAMING: u8 = 1;
    /// Serving as a supplier.
    pub const SUPPLYING: u8 = 2;
    /// Left the system.
    pub const DEPARTED: u8 = 3;
}

/// Peer flag bits (the `flags` array).
pub mod flags {
    /// Supplier is mid-session.
    pub const BUSY: u8 = 1;
    /// A favored-class request arrived during the current session.
    pub const SAW_FAVORED: u8 = 2;
    /// Departure fired mid-session; leave at session end.
    pub const PENDING_DEPART: u8 = 4;
}

/// The §4.1 admission vector packed into one `u64`: the probability
/// `P_admit(class j) = 2^-e_j` stores its exponent `e_j ∈ 0..=15` in
/// nibble `j - 1`. All §4.1 updates (initialization, relaxation,
/// tightening) become a handful of shifts — no allocation, no bounds
/// checks beyond the class count.
///
/// Property-tested equivalent to
/// [`p2ps_core::admission::AdmissionVector`] (see the tests below).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PackedVector(u64);

impl PackedVector {
    /// §4.1(a) initialization for a class-`own` supplier over
    /// `num_classes` classes: `e_j = max(j - own, 0)` under `DACp2p`,
    /// all zeros (`P = 1` everywhere) under `NDACp2p`.
    pub fn initial(own: u8, num_classes: u8, protocol: Protocol) -> Self {
        debug_assert!((1..=16).contains(&num_classes) && (1..=num_classes).contains(&own));
        let mut packed = 0u64;
        if protocol == Protocol::Dac {
            for j in 1..=num_classes {
                packed |= u64::from(j.saturating_sub(own).min(15)) << ((j - 1) * 4);
            }
        }
        PackedVector(packed)
    }

    /// The exponent `e` of `P_admit(class) = 2^-e`.
    pub fn exponent(self, class: u8) -> u8 {
        ((self.0 >> ((class - 1) * 4)) & 0xF) as u8
    }

    /// Whether `class` is currently favored (`P_admit = 1`).
    pub fn favors(self, class: u8) -> bool {
        self.exponent(class) == 0
    }

    /// The lowest (numerically largest) favored class. At least the
    /// supplier's own class is always favored.
    #[allow(dead_code)] // exercised by the equivalence tests
    pub fn lowest_favored(self, num_classes: u8) -> u8 {
        let mut lowest = 1;
        for j in 1..=num_classes {
            if self.favors(j) {
                lowest = j;
            }
        }
        lowest
    }

    /// One §4.1(b)/(c) relaxation step: every exponent decreases by one,
    /// saturating at zero.
    pub fn relax(&mut self, num_classes: u8) {
        self.relax_times(1, num_classes);
    }

    /// `steps` relaxation steps at once (lazy idle relaxation).
    pub fn relax_times(&mut self, steps: u64, num_classes: u8) {
        let steps = steps.min(15) as u8;
        let mut packed = self.0;
        let mut out = 0u64;
        for j in 0..num_classes {
            let e = (packed & 0xF) as u8;
            out |= u64::from(e.saturating_sub(steps)) << (j * 4);
            packed >>= 4;
        }
        self.0 = out;
    }

    /// §4.1(c) tightening around class `to`: the vector resets as if the
    /// supplier were of class `to`.
    pub fn tighten(&mut self, to: u8, num_classes: u8) {
        *self = PackedVector::initial(to, num_classes, Protocol::Dac);
    }

    /// The probabilistic admission test for a class-`class` request:
    /// true with probability `2^-e` given one uniform `draw`.
    pub fn decide(self, class: u8, draw: u64) -> bool {
        let mask = (1u64 << self.exponent(class)) - 1;
        draw & mask == 0
    }
}

/// One shard's struct-of-arrays peer state. Indexed by *local* peer
/// index; the engine maps global id `p` to shard `p % shards`, local
/// index `p / shards`. Every array is allocated once at setup — the
/// event loop never allocates per peer or per event.
#[derive(Debug, Default)]
pub struct PeerStore {
    /// Protocol class (1-based).
    pub class: Vec<u8>,
    /// Catalog item streamed/served (Zipf-assigned).
    pub item: Vec<u16>,
    /// Lifecycle state (see [`state`]).
    pub state: Vec<u8>,
    /// Flag bits (see [`flags`]).
    pub flags: Vec<u8>,
    /// Rejections suffered so far (drives backoff; saturating).
    pub rejections: Vec<u16>,
    /// Time of the first streaming request, seconds.
    pub first_request: Vec<u32>,
    /// Packed admission vector (valid while supplying).
    pub vector: Vec<PackedVector>,
    /// Last time idle relaxation was folded in, seconds.
    pub relax_anchor: Vec<u32>,
    /// Requester holding an uncommitted grant this boundary, or
    /// [`NONE_U32`].
    pub provisional: Vec<u32>,
    /// Highest (numerically smallest) reminder class this session;
    /// `0` = none.
    pub best_reminder: Vec<u8>,
    /// Per-peer SplitMix64 stream state: every random draw a peer makes
    /// comes from its own stream, so outcomes are independent of event
    /// interleaving across shards and threads.
    pub rng: Vec<u64>,
}

impl PeerStore {
    /// An empty store with room for `capacity` peers.
    pub fn with_capacity(capacity: usize) -> Self {
        PeerStore {
            class: Vec::with_capacity(capacity),
            item: Vec::with_capacity(capacity),
            state: Vec::with_capacity(capacity),
            flags: Vec::with_capacity(capacity),
            rejections: Vec::with_capacity(capacity),
            first_request: Vec::with_capacity(capacity),
            vector: Vec::with_capacity(capacity),
            relax_anchor: Vec::with_capacity(capacity),
            provisional: Vec::with_capacity(capacity),
            best_reminder: Vec::with_capacity(capacity),
            rng: Vec::with_capacity(capacity),
        }
    }

    /// Number of peers in the store.
    pub fn len(&self) -> usize {
        self.class.len()
    }

    /// Whether the store holds no peers.
    #[allow(dead_code)] // exercised by the layout tests
    pub fn is_empty(&self) -> bool {
        self.class.is_empty()
    }

    /// Removes every peer, keeping all allocations.
    pub fn clear(&mut self) {
        self.class.clear();
        self.item.clear();
        self.state.clear();
        self.flags.clear();
        self.rejections.clear();
        self.first_request.clear();
        self.vector.clear();
        self.relax_anchor.clear();
        self.provisional.clear();
        self.best_reminder.clear();
        self.rng.clear();
    }

    /// Appends one peer and returns its local index.
    pub fn push(&mut self, class: u8, item: u16, state: u8, rng_state: u64) -> usize {
        let idx = self.len();
        self.class.push(class);
        self.item.push(item);
        self.state.push(state);
        self.flags.push(0);
        self.rejections.push(0);
        self.first_request.push(0);
        self.vector.push(PackedVector::default());
        self.relax_anchor.push(0);
        self.provisional.push(NONE_U32);
        self.best_reminder.push(0);
        self.rng.push(rng_state);
        idx
    }

    /// Folds pending idle relaxation into `local`'s vector up to `now`
    /// (lazy §4.1(b), mirroring `SupplierState::sync`).
    pub fn sync_supplier(&mut self, local: usize, now: u32, t_out: u32, protocol: Protocol) {
        if protocol == Protocol::Ndac {
            self.relax_anchor[local] = now.max(self.relax_anchor[local]);
            return;
        }
        if self.flags[local] & flags::BUSY != 0 || t_out == 0 {
            return;
        }
        let anchor = self.relax_anchor[local];
        if now <= anchor {
            return;
        }
        let steps = u64::from((now - anchor) / t_out);
        if steps > 0 {
            let num_classes = 16; // relaxation is per-nibble; spare nibbles stay 0
            self.vector[local].relax_times(steps, num_classes);
            self.relax_anchor[local] = anchor + (steps as u32) * t_out;
        }
    }

    /// Approximate bytes of store state per peer (for capacity planning
    /// and the docs; excludes `Vec` headers).
    #[allow(dead_code)] // pinned by the layout tests, quoted in the docs
    pub const BYTES_PER_PEER: usize = 1 + 2 + 1 + 1 + 2 + 4 + 8 + 4 + 4 + 1 + 8;
}

/// Advances a SplitMix64 stream and returns the next draw — the
/// engine's only random primitive. One stream per peer keeps draws
/// independent of cross-shard interleaving.
#[inline]
pub fn rng_next(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A uniform draw in `[0, n)` from a SplitMix64 stream.
#[inline]
pub fn rng_range(state: &mut u64, n: u32) -> u32 {
    (rng_next(state) % u64::from(n)) as u32
}

/// A uniform draw in `[0, 1)` from a SplitMix64 stream.
#[inline]
pub fn rng_unit(state: &mut u64) -> f64 {
    (rng_next(state) >> 11) as f64 / (1u64 << 53) as f64
}

/// Derives the initial stream state for peer `id` under `seed`.
#[inline]
pub fn rng_stream(seed: u64, id: u64) -> u64 {
    let mut s = seed ^ id.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
    // One warm-up step decorrelates adjacent ids.
    rng_next(&mut s);
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use p2ps_core::admission::AdmissionVector;
    use p2ps_core::PeerClass;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn assert_equiv(packed: PackedVector, reference: &AdmissionVector, num_classes: u8) {
        for j in 1..=num_classes {
            let class = PeerClass::new(j).unwrap();
            assert_eq!(
                packed.exponent(j),
                reference.exponent(class),
                "exponent of class {j}"
            );
            assert_eq!(
                packed.favors(j),
                reference.favors(class),
                "favors of class {j}"
            );
        }
        assert_eq!(
            packed.lowest_favored(num_classes),
            reference.lowest_favored().get(),
            "lowest favored"
        );
    }

    #[test]
    fn initial_vectors_match_the_reference() {
        for num_classes in 1..=16u8 {
            for own in 1..=num_classes {
                let class = PeerClass::new(own).unwrap();
                let reference = AdmissionVector::initial(class, num_classes).unwrap();
                let packed = PackedVector::initial(own, num_classes, Protocol::Dac);
                assert_equiv(packed, &reference, num_classes);
                let ndac = PackedVector::initial(own, num_classes, Protocol::Ndac);
                let all_ones = AdmissionVector::all_ones(num_classes).unwrap();
                assert_equiv(ndac, &all_ones, num_classes);
            }
        }
    }

    #[test]
    fn random_update_sequences_stay_equivalent() {
        // Property test: arbitrary interleavings of relax / relax_times /
        // tighten keep the packed vector bit-equivalent to the reference
        // Vec<u8> implementation, across every class count.
        let mut rng = SmallRng::seed_from_u64(0x5045_4552);
        for _ in 0..500 {
            let num_classes = rng.gen_range(1u8..=16);
            let own = rng.gen_range(1..=num_classes);
            let mut reference =
                AdmissionVector::initial(PeerClass::new(own).unwrap(), num_classes).unwrap();
            let mut packed = PackedVector::initial(own, num_classes, Protocol::Dac);
            for _ in 0..40 {
                match rng.gen_range(0u8..3) {
                    0 => {
                        reference.relax();
                        packed.relax(num_classes);
                    }
                    1 => {
                        let steps = rng.gen_range(0u64..20);
                        reference.relax_times(steps);
                        packed.relax_times(steps, num_classes);
                    }
                    _ => {
                        let to = rng.gen_range(1..=num_classes);
                        reference.tighten(PeerClass::new(to).unwrap());
                        packed.tighten(to, num_classes);
                    }
                }
                assert_equiv(packed, &reference, num_classes);
            }
        }
    }

    #[test]
    fn decide_matches_the_reference_admission_probability() {
        // decide() with a uniform draw admits with probability 2^-e, the
        // same Bernoulli the reference implements with `rng & mask == 0`.
        let packed = PackedVector::initial(1, 4, Protocol::Dac);
        let mut state = rng_stream(42, 7);
        let trials = 200_000;
        let hits = (0..trials)
            .filter(|_| packed.decide(4, rng_next(&mut state)))
            .count() as f64;
        let freq = hits / f64::from(trials);
        assert!((freq - 0.125).abs() < 0.01, "freq {freq}"); // e = 3
        assert!(
            packed.decide(1, rng_next(&mut state)),
            "e = 0 always admits"
        );
    }

    #[test]
    fn sync_supplier_matches_lazy_relaxation() {
        use p2ps_core::admission::{Protocol, SupplierConfig, SupplierState};
        let t_out = 100u32;
        let cfg = SupplierConfig::new(4, u64::from(t_out), Protocol::Dac).unwrap();
        let mut reference = SupplierState::new(PeerClass::new(1).unwrap(), cfg, 0).unwrap();

        let mut store = PeerStore::with_capacity(1);
        store.push(1, 0, state::SUPPLYING, rng_stream(1, 0));
        store.vector[0] = PackedVector::initial(1, 4, Protocol::Dac);

        for now in [50u32, 250, 300, 1_000] {
            store.sync_supplier(0, now, t_out, Protocol::Dac);
            let ref_vec = reference.vector_at(u64::from(now)).clone();
            for j in 1..=4u8 {
                assert_eq!(
                    store.vector[0].exponent(j),
                    ref_vec.exponent(PeerClass::new(j).unwrap()),
                    "t={now} class {j}"
                );
            }
        }
    }

    #[test]
    fn store_push_and_layout() {
        let mut store = PeerStore::with_capacity(4);
        assert!(store.is_empty());
        let a = store.push(1, 0, state::SUPPLYING, 7);
        let b = store.push(3, 2, state::WAITING, 9);
        assert_eq!((a, b), (0, 1));
        assert_eq!(store.len(), 2);
        assert_eq!(store.class[1], 3);
        assert_eq!(store.item[1], 2);
        assert_eq!(store.provisional[0], NONE_U32);
        // The compactness claim the engine's memory budget rests on.
        const { assert!(PeerStore::BYTES_PER_PEER <= 40) };
    }

    #[test]
    fn rng_streams_are_deterministic_and_distinct() {
        let mut a = rng_stream(42, 1);
        let mut b = rng_stream(42, 1);
        let mut c = rng_stream(42, 2);
        let mut diff = 0;
        for _ in 0..100 {
            let (x, y, z) = (rng_next(&mut a), rng_next(&mut b), rng_next(&mut c));
            assert_eq!(x, y);
            if x != z {
                diff += 1;
            }
        }
        assert!(diff > 90);
        let mut s = rng_stream(1, 1);
        for _ in 0..1_000 {
            let r = rng_range(&mut s, 10);
            assert!(r < 10);
            let u = rng_unit(&mut s);
            assert!((0.0..1.0).contains(&u));
        }
    }
}
