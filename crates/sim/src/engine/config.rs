//! Configuration for the capacity-amplification engine.

use serde::{Deserialize, Serialize};

use p2ps_core::admission::Protocol;

use crate::{ArrivalProcess, HOUR, MINUTE};

/// Configuration errors raised by [`AmpConfigBuilder::build`].
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum AmpConfigError {
    /// Class count outside `1..=16`, or `classes + shift` overflowing.
    BadClassCount(u8),
    /// The per-class mix does not have one weight per class or sums to 0.
    BadClassMix,
    /// Zero requesting peers or zero seeds.
    EmptySystem,
    /// `m` (candidates per probe) must be at least 1.
    ZeroCandidates,
    /// The catalog needs at least one item.
    EmptyCatalog,
    /// The Zipf exponent must be finite and non-negative.
    BadZipfExponent(f64),
    /// Shard count must be at least 1.
    ZeroShards,
    /// Thread count must be at least 1.
    ZeroThreads,
    /// The epoch must be positive and no longer than the horizon.
    BadEpoch,
    /// The arrival window exceeds the horizon.
    WindowExceedsHorizon,
    /// Session duration must be positive.
    ZeroSessionDuration,
    /// The horizon exceeds the engine's `u32` second clock.
    HorizonOverflow,
}

impl std::fmt::Display for AmpConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AmpConfigError::BadClassCount(k) => write!(f, "invalid class count {k}"),
            AmpConfigError::BadClassMix => {
                write!(f, "class mix must have one positive-sum weight per class")
            }
            AmpConfigError::EmptySystem => write!(f, "need at least one seed and one requester"),
            AmpConfigError::ZeroCandidates => write!(f, "need at least one candidate per probe"),
            AmpConfigError::EmptyCatalog => write!(f, "catalog needs at least one item"),
            AmpConfigError::BadZipfExponent(s) => write!(f, "invalid Zipf exponent {s}"),
            AmpConfigError::ZeroShards => write!(f, "need at least one shard"),
            AmpConfigError::ZeroThreads => write!(f, "need at least one thread"),
            AmpConfigError::BadEpoch => write!(f, "epoch must be positive and within the horizon"),
            AmpConfigError::WindowExceedsHorizon => {
                write!(f, "arrival window exceeds the horizon")
            }
            AmpConfigError::ZeroSessionDuration => write!(f, "session duration must be positive"),
            AmpConfigError::HorizonOverflow => {
                write!(f, "horizon exceeds the engine's u32 second clock")
            }
        }
    }
}

impl std::error::Error for AmpConfigError {}

/// Full parameterization of one amplification run.
///
/// Protocol parameters default to the paper's §5.1 values (`M = 8`,
/// `T_out = 20 min`, `T_bkf = 10 min`, `E_bkf = 2`, 60-minute sessions,
/// classes 1–4 at 10/10/40/40 %); the population, catalog, arrival
/// process, churn, and parallelism knobs are the engine's own.
///
/// The shard count is a *logical* property of the run: it selects which
/// peers exchange messages at which epoch boundary and is part of the
/// trace definition, while `threads` only chooses how many workers
/// execute those shards — any thread count yields a bit-identical trace.
/// The engine's cross-shard protocol additionally makes traces invariant
/// to the shard count itself; see `docs/AMPLIFICATION.md`.
///
/// # Examples
///
/// ```
/// use p2ps_sim::AmpConfig;
///
/// let config = AmpConfig::builder()
///     .requesting_peers(10_000)
///     .seed_suppliers(64)
///     .build()?;
/// assert_eq!(config.m(), 8);
/// # Ok::<(), p2ps_sim::AmpConfigError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AmpConfig {
    seed_suppliers: u32,
    requesting_peers: u32,
    num_classes: u8,
    class_mix: Vec<f64>,
    m: usize,
    t_out_secs: u32,
    t_bkf_secs: u32,
    e_bkf: u32,
    session_secs: u32,
    arrival_window_secs: u32,
    horizon_secs: u32,
    epoch_secs: u32,
    process: ArrivalProcess,
    protocol: Protocol,
    bandwidth_shift: u8,
    catalog_items: u16,
    zipf_exponent: f64,
    supplier_lifetime_secs: u32,
    shards: u32,
    threads: usize,
}

impl AmpConfig {
    /// A builder preloaded with the defaults above.
    pub fn builder() -> AmpConfigBuilder {
        AmpConfigBuilder::default()
    }

    /// Number of seed suppliers (class 1, spread round-robin over the
    /// catalog at `t = 0`).
    pub fn seed_suppliers(&self) -> u32 {
        self.seed_suppliers
    }

    /// Number of requesting peers arriving during the window.
    pub fn requesting_peers(&self) -> u32 {
        self.requesting_peers
    }

    /// Total population (seeds + requesters).
    pub fn total_peers(&self) -> u32 {
        self.seed_suppliers + self.requesting_peers
    }

    /// Number of bandwidth classes `K`.
    pub fn num_classes(&self) -> u8 {
        self.num_classes
    }

    /// Relative weight of each class among requesting peers.
    pub fn class_mix(&self) -> &[f64] {
        &self.class_mix
    }

    /// Candidates probed per admission attempt (the paper's `M`).
    pub fn m(&self) -> usize {
        self.m
    }

    /// Idle relaxation timeout `T_out` in seconds.
    pub fn t_out_secs(&self) -> u32 {
        self.t_out_secs
    }

    /// Base backoff `T_bkf` in seconds.
    pub fn t_bkf_secs(&self) -> u32 {
        self.t_bkf_secs
    }

    /// Exponential backoff factor `E_bkf`.
    pub fn e_bkf(&self) -> u32 {
        self.e_bkf
    }

    /// Streaming session duration in seconds.
    pub fn session_secs(&self) -> u32 {
        self.session_secs
    }

    /// First-time arrival window in seconds.
    pub fn arrival_window_secs(&self) -> u32 {
        self.arrival_window_secs
    }

    /// Simulated horizon in seconds.
    pub fn horizon_secs(&self) -> u32 {
        self.horizon_secs
    }

    /// Virtual-time epoch length in seconds. Admission attempts issued
    /// within an epoch resolve at its boundary.
    pub fn epoch_secs(&self) -> u32 {
        self.epoch_secs
    }

    /// The arrival process generating first-request times.
    pub fn process(&self) -> &ArrivalProcess {
        &self.process
    }

    /// Which admission protocol suppliers run.
    pub fn protocol(&self) -> Protocol {
        self.protocol
    }

    /// Bandwidth scale shift: a class-`k` peer offers
    /// `R0 / 2^(k - 1 + shift)` once supplying (see
    /// [`crate::SimConfig::bandwidth_shift`]).
    pub fn bandwidth_shift(&self) -> u8 {
        self.bandwidth_shift
    }

    /// Number of items in the catalog.
    pub fn catalog_items(&self) -> u16 {
        self.catalog_items
    }

    /// Zipf popularity exponent over the catalog (`0` = uniform).
    pub fn zipf_exponent(&self) -> f64 {
        self.zipf_exponent
    }

    /// Mean supplier lifetime in seconds after becoming a supplier
    /// (exponentially distributed); `0` disables churn.
    pub fn supplier_lifetime_secs(&self) -> u32 {
        self.supplier_lifetime_secs
    }

    /// Logical shard count (part of the trace definition).
    pub fn shards(&self) -> u32 {
        self.shards
    }

    /// Worker threads executing the shards.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Number of epochs in the run (horizon / epoch, rounded up).
    pub fn epochs(&self) -> u32 {
        self.horizon_secs.div_ceil(self.epoch_secs)
    }

    /// The fixed-point serving capacity a protocol-class-`class` peer
    /// offers once supplying: `FULL_RATE >> (class + shift - 1)`.
    pub fn offer_raw(&self, class: u8) -> i64 {
        p2ps_core::Bandwidth::FULL_RATE.raw() as i64 >> (class + self.bandwidth_shift - 1)
    }
}

/// Builder for [`AmpConfig`] (non-consuming, per the API guidelines).
#[derive(Debug, Clone)]
pub struct AmpConfigBuilder {
    config: AmpConfig,
}

impl Default for AmpConfigBuilder {
    fn default() -> Self {
        AmpConfigBuilder {
            config: AmpConfig {
                seed_suppliers: 64,
                requesting_peers: 10_000,
                num_classes: 4,
                class_mix: vec![0.10, 0.10, 0.40, 0.40],
                m: 8,
                t_out_secs: 20 * MINUTE as u32,
                t_bkf_secs: 10 * MINUTE as u32,
                e_bkf: 2,
                session_secs: 60 * MINUTE as u32,
                arrival_window_secs: 6 * HOUR as u32,
                horizon_secs: 12 * HOUR as u32,
                epoch_secs: 60,
                process: ArrivalProcess::Poisson,
                protocol: Protocol::Dac,
                bandwidth_shift: 1,
                catalog_items: 16,
                zipf_exponent: 1.0,
                supplier_lifetime_secs: 0,
                shards: 4,
                threads: 1,
            },
        }
    }
}

impl AmpConfigBuilder {
    /// Sets the number of seed suppliers.
    pub fn seed_suppliers(&mut self, n: u32) -> &mut Self {
        self.config.seed_suppliers = n;
        self
    }

    /// Sets the number of requesting peers.
    pub fn requesting_peers(&mut self, n: u32) -> &mut Self {
        self.config.requesting_peers = n;
        self
    }

    /// Sets the number of classes and their mix weights.
    pub fn class_mix(&mut self, weights: Vec<f64>) -> &mut Self {
        self.config.num_classes = weights.len() as u8;
        self.config.class_mix = weights;
        self
    }

    /// Sets `M`, the candidates probed per attempt.
    pub fn m(&mut self, m: usize) -> &mut Self {
        self.config.m = m;
        self
    }

    /// Sets `T_out` in seconds.
    pub fn t_out_secs(&mut self, secs: u32) -> &mut Self {
        self.config.t_out_secs = secs;
        self
    }

    /// Sets `T_bkf` in seconds.
    pub fn t_bkf_secs(&mut self, secs: u32) -> &mut Self {
        self.config.t_bkf_secs = secs;
        self
    }

    /// Sets the exponential backoff factor `E_bkf`.
    pub fn e_bkf(&mut self, factor: u32) -> &mut Self {
        self.config.e_bkf = factor;
        self
    }

    /// Sets the session duration in seconds.
    pub fn session_secs(&mut self, secs: u32) -> &mut Self {
        self.config.session_secs = secs;
        self
    }

    /// Sets the first-time arrival window in seconds.
    pub fn arrival_window_secs(&mut self, secs: u32) -> &mut Self {
        self.config.arrival_window_secs = secs;
        self
    }

    /// Sets the simulated horizon in seconds.
    pub fn horizon_secs(&mut self, secs: u32) -> &mut Self {
        self.config.horizon_secs = secs;
        self
    }

    /// Sets the epoch length in seconds.
    pub fn epoch_secs(&mut self, secs: u32) -> &mut Self {
        self.config.epoch_secs = secs;
        self
    }

    /// Sets the arrival process.
    pub fn process(&mut self, process: ArrivalProcess) -> &mut Self {
        self.config.process = process;
        self
    }

    /// Sets the admission protocol.
    pub fn protocol(&mut self, protocol: Protocol) -> &mut Self {
        self.config.protocol = protocol;
        self
    }

    /// Sets the bandwidth scale shift.
    pub fn bandwidth_shift(&mut self, shift: u8) -> &mut Self {
        self.config.bandwidth_shift = shift;
        self
    }

    /// Sets the catalog size.
    pub fn catalog_items(&mut self, items: u16) -> &mut Self {
        self.config.catalog_items = items;
        self
    }

    /// Sets the Zipf popularity exponent (`0` = uniform).
    pub fn zipf_exponent(&mut self, s: f64) -> &mut Self {
        self.config.zipf_exponent = s;
        self
    }

    /// Churn: sets the mean supplier lifetime in seconds (`0` = off).
    pub fn supplier_lifetime_secs(&mut self, secs: u32) -> &mut Self {
        self.config.supplier_lifetime_secs = secs;
        self
    }

    /// Sets the logical shard count.
    pub fn shards(&mut self, shards: u32) -> &mut Self {
        self.config.shards = shards;
        self
    }

    /// Sets the worker thread count.
    pub fn threads(&mut self, threads: usize) -> &mut Self {
        self.config.threads = threads;
        self
    }

    /// Validates and produces the configuration.
    ///
    /// # Errors
    ///
    /// Any [`AmpConfigError`] describing the first violated constraint.
    pub fn build(&self) -> Result<AmpConfig, AmpConfigError> {
        let c = &self.config;
        if c.num_classes == 0 || c.num_classes > 16 {
            return Err(AmpConfigError::BadClassCount(c.num_classes));
        }
        if c.num_classes.saturating_add(c.bandwidth_shift) > 16 {
            return Err(AmpConfigError::BadClassCount(
                c.num_classes.saturating_add(c.bandwidth_shift),
            ));
        }
        if c.class_mix.len() != c.num_classes as usize
            || c.class_mix.iter().any(|&w| !w.is_finite() || w < 0.0)
            || c.class_mix.iter().sum::<f64>() <= 0.0
        {
            return Err(AmpConfigError::BadClassMix);
        }
        if c.seed_suppliers == 0 || c.requesting_peers == 0 {
            return Err(AmpConfigError::EmptySystem);
        }
        if c.m == 0 {
            return Err(AmpConfigError::ZeroCandidates);
        }
        if c.catalog_items == 0 {
            return Err(AmpConfigError::EmptyCatalog);
        }
        if !c.zipf_exponent.is_finite() || c.zipf_exponent < 0.0 {
            return Err(AmpConfigError::BadZipfExponent(c.zipf_exponent));
        }
        if c.shards == 0 {
            return Err(AmpConfigError::ZeroShards);
        }
        if c.threads == 0 {
            return Err(AmpConfigError::ZeroThreads);
        }
        if c.epoch_secs == 0 || c.epoch_secs > c.horizon_secs {
            return Err(AmpConfigError::BadEpoch);
        }
        if c.arrival_window_secs > c.horizon_secs || c.arrival_window_secs == 0 {
            return Err(AmpConfigError::WindowExceedsHorizon);
        }
        if c.session_secs == 0 {
            return Err(AmpConfigError::ZeroSessionDuration);
        }
        // Session ends and departures must stay addressable on the u32
        // second clock even when scheduled at the horizon.
        if c.horizon_secs > u32::MAX / 2 {
            return Err(AmpConfigError::HorizonOverflow);
        }
        Ok(c.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_follow_the_paper_protocol_parameters() {
        let c = AmpConfig::builder().build().unwrap();
        assert_eq!(c.m(), 8);
        assert_eq!(c.t_out_secs(), 1_200);
        assert_eq!(c.t_bkf_secs(), 600);
        assert_eq!(c.e_bkf(), 2);
        assert_eq!(c.session_secs(), 3_600);
        assert_eq!(c.num_classes(), 4);
        assert_eq!(c.class_mix(), &[0.10, 0.10, 0.40, 0.40]);
        assert_eq!(c.protocol(), Protocol::Dac);
        assert_eq!(c.epochs(), c.horizon_secs() / c.epoch_secs());
        assert_eq!(c.total_peers(), 10_064);
    }

    #[test]
    fn offer_raw_follows_the_class_and_shift() {
        let c = AmpConfig::builder().build().unwrap();
        // shift 1: class 1 offers half the full rate.
        assert_eq!(c.offer_raw(1), (1 << 16) / 2);
        assert_eq!(c.offer_raw(4), (1 << 16) / 16);
        let mut b = AmpConfig::builder();
        let literal = b.bandwidth_shift(0).build().unwrap();
        assert_eq!(literal.offer_raw(1), 1 << 16);
    }

    #[test]
    fn validation_errors() {
        let err = |f: &dyn Fn(&mut AmpConfigBuilder) -> &mut AmpConfigBuilder| {
            let mut b = AmpConfig::builder();
            f(&mut b);
            b.build().unwrap_err()
        };
        assert_eq!(
            err(&|b| b.class_mix(vec![])),
            AmpConfigError::BadClassCount(0)
        );
        assert_eq!(
            err(&|b| b.class_mix(vec![0.0, 0.0])),
            AmpConfigError::BadClassMix
        );
        assert_eq!(err(&|b| b.seed_suppliers(0)), AmpConfigError::EmptySystem);
        assert_eq!(err(&|b| b.requesting_peers(0)), AmpConfigError::EmptySystem);
        assert_eq!(err(&|b| b.m(0)), AmpConfigError::ZeroCandidates);
        assert_eq!(err(&|b| b.catalog_items(0)), AmpConfigError::EmptyCatalog);
        assert_eq!(
            err(&|b| b.zipf_exponent(-1.0)),
            AmpConfigError::BadZipfExponent(-1.0)
        );
        assert_eq!(err(&|b| b.shards(0)), AmpConfigError::ZeroShards);
        assert_eq!(err(&|b| b.threads(0)), AmpConfigError::ZeroThreads);
        assert_eq!(err(&|b| b.epoch_secs(0)), AmpConfigError::BadEpoch);
        assert_eq!(
            err(&|b| b
                .arrival_window_secs(u32::MAX / 2 + 2)
                .horizon_secs(u32::MAX / 2 + 2)),
            AmpConfigError::HorizonOverflow
        );
        assert_eq!(
            err(&|b| b.session_secs(0)),
            AmpConfigError::ZeroSessionDuration
        );
        assert_eq!(
            err(&|b| b.arrival_window_secs(100_000).horizon_secs(50_000)),
            AmpConfigError::WindowExceedsHorizon
        );
        assert_eq!(
            err(&|b| b.bandwidth_shift(13)),
            AmpConfigError::BadClassCount(17)
        );
        for e in [
            AmpConfigError::BadClassCount(0),
            AmpConfigError::BadClassMix,
            AmpConfigError::EmptySystem,
            AmpConfigError::ZeroCandidates,
            AmpConfigError::EmptyCatalog,
            AmpConfigError::BadZipfExponent(f64::NAN),
            AmpConfigError::ZeroShards,
            AmpConfigError::ZeroThreads,
            AmpConfigError::BadEpoch,
            AmpConfigError::WindowExceedsHorizon,
            AmpConfigError::ZeroSessionDuration,
            AmpConfigError::HorizonOverflow,
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
