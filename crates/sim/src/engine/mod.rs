//! Capacity-amplification engine: a compact-state, sharded
//! discrete-event simulator sized for 10⁵–10⁶ peers.
//!
//! The legacy [`crate::Simulation`] models every paper figure with
//! per-peer heap objects and a single event loop; it is exact but tops
//! out around 10⁴ peers. This module trades generality for scale:
//!
//! * [`store`] — struct-of-arrays peer state (~40 bytes/peer, zero
//!   allocations per event on the steady path) with the §4.1 admission
//!   vector nibble-packed into a `u64`.
//! * [`queue`] — a flat indexed binary heap backing both the legacy
//!   [`crate::EventQueue`] and the engine's per-shard queues.
//! * [`config`] — [`AmpConfig`]: population, catalog (Zipf popularity),
//!   arrival process (Poisson / flash crowd), churn, shard and thread
//!   counts.
//! * [`run`] — [`AmpEngine`]: a bulk-synchronous-parallel event loop.
//!   Peers are hash-partitioned over a *fixed* logical shard count;
//!   shards advance in virtual-time epochs and exchange probe/grant
//!   messages only at epoch boundaries, with inboxes sorted by content,
//!   so one `u64` seed yields bit-identical traces at 1, 2, or N
//!   worker threads.
//! * [`report`] — [`AmpReport`]: capacity-evolution and rejection-rate
//!   curves, time to N-fold serving capacity, and an FNV-1a trace
//!   digest for cross-thread equivalence checks.

mod config;
mod queue;
mod report;
mod run;
mod store;

pub use config::{AmpConfig, AmpConfigBuilder, AmpConfigError};
pub use queue::IndexedHeap;
pub use report::{AmpReport, FoldCrossing};
pub use run::AmpEngine;
