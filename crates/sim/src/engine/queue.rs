//! Flat, index-addressed binary min-heap.
//!
//! `std::collections::BinaryHeap` is a max-heap and forces the
//! `Reverse<T>` wrapper plus a fresh allocation per simulation; this
//! heap is a plain `Vec<T>` with explicit parent/child index
//! arithmetic (`parent(i) = (i-1)/2`, `children(i) = 2i+1, 2i+2`),
//! min-ordered, `Copy`-only payloads, and a `with_capacity`
//! constructor so the event queue of a pre-sized simulation never
//! reallocates on the steady path.

/// A binary min-heap over `Copy + Ord` entries backed by one flat `Vec`.
///
/// Pop order is ascending by `T`'s `Ord`; ties are unordered, so
/// callers that need total determinism must make `T`'s ordering total
/// over their payloads (the simulator keys entries by
/// `(time, sequence, …)` or `(time, kind, peer)`).
#[derive(Debug, Clone)]
pub struct IndexedHeap<T: Copy + Ord> {
    slots: Vec<T>,
}

impl<T: Copy + Ord> Default for IndexedHeap<T> {
    fn default() -> Self {
        IndexedHeap::new()
    }
}

impl<T: Copy + Ord> IndexedHeap<T> {
    /// An empty heap.
    pub fn new() -> Self {
        IndexedHeap { slots: Vec::new() }
    }

    /// An empty heap with room for `capacity` entries before any
    /// reallocation.
    pub fn with_capacity(capacity: usize) -> Self {
        IndexedHeap {
            slots: Vec::with_capacity(capacity),
        }
    }

    /// Number of queued entries.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the heap is empty.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// The smallest entry, if any, without removing it.
    pub fn peek(&self) -> Option<&T> {
        self.slots.first()
    }

    /// Inserts `entry`, sifting it up to its heap position.
    pub fn push(&mut self, entry: T) {
        self.slots.push(entry);
        self.sift_up(self.slots.len() - 1);
    }

    /// Removes and returns the smallest entry.
    pub fn pop(&mut self) -> Option<T> {
        let n = self.slots.len();
        if n == 0 {
            return None;
        }
        self.slots.swap(0, n - 1);
        let top = self.slots.pop();
        if !self.slots.is_empty() {
            self.sift_down(0);
        }
        top
    }

    /// Removes all entries, keeping the allocation.
    pub fn clear(&mut self) {
        self.slots.clear();
    }

    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if self.slots[i] >= self.slots[parent] {
                break;
            }
            self.slots.swap(i, parent);
            i = parent;
        }
    }

    fn sift_down(&mut self, mut i: usize) {
        let n = self.slots.len();
        loop {
            let left = 2 * i + 1;
            if left >= n {
                break;
            }
            let right = left + 1;
            let smallest = if right < n && self.slots[right] < self.slots[left] {
                right
            } else {
                left
            };
            if self.slots[smallest] >= self.slots[i] {
                break;
            }
            self.slots.swap(i, smallest);
            i = smallest;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn pops_in_ascending_order() {
        let mut heap = IndexedHeap::new();
        for x in [5u64, 1, 9, 3, 7, 2, 8, 4, 6, 0] {
            heap.push(x);
        }
        assert_eq!(heap.peek(), Some(&0));
        let drained: Vec<u64> = std::iter::from_fn(|| heap.pop()).collect();
        assert_eq!(drained, (0..10).collect::<Vec<_>>());
        assert!(heap.is_empty());
    }

    #[test]
    fn matches_std_binary_heap_on_random_streams() {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;
        let mut rng = SmallRng::seed_from_u64(0xE_4E57);
        for _ in 0..50 {
            let mut ours = IndexedHeap::with_capacity(64);
            let mut std_heap = BinaryHeap::new();
            for _ in 0..500 {
                if rng.gen_bool(0.6) {
                    let v: (u64, u64) = (rng.gen_range(0u64..100), rng.gen());
                    ours.push(v);
                    std_heap.push(Reverse(v));
                } else {
                    assert_eq!(ours.pop(), std_heap.pop().map(|Reverse(v)| v));
                }
                assert_eq!(ours.len(), std_heap.len());
            }
            let a: Vec<_> = std::iter::from_fn(|| ours.pop()).collect();
            let b: Vec<_> = std::iter::from_fn(|| std_heap.pop().map(|Reverse(v)| v)).collect();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn with_capacity_never_grows_within_bounds() {
        let mut heap = IndexedHeap::with_capacity(128);
        let cap = heap.slots.capacity();
        for i in 0..128u32 {
            heap.push(i);
        }
        assert_eq!(heap.slots.capacity(), cap);
        heap.clear();
        assert_eq!(heap.slots.capacity(), cap);
        assert!(heap.pop().is_none());
    }
}
