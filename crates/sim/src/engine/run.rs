//! The bulk-synchronous-parallel amplification event loop.
//!
//! # Execution model
//!
//! Peers are partitioned over `shards()` logical shards by
//! `shard = id % S` (`local = id / S`). Each shard owns a
//! [`PeerStore`], an [`IndexedHeap`] event queue, and reusable message
//! buffers. Virtual time advances in epochs of `epoch_secs()`; within
//! an epoch every shard processes its own events (arrivals, retries,
//! session completions, departures) against a *frozen* snapshot of the
//! supplier pools, and the §4.2 probe protocol runs as three
//! message-sorted rounds at the epoch boundary:
//!
//! 1. **local** — pop events `t < boundary`; admission attempts emit
//!    `Probe`s to the candidates' shards.
//! 2. **round 1** — each supplier handles its probes in sorted
//!    `(supplier, requester)` order: sync idle relaxation, then grant
//!    (at most one uncommitted grant per boundary, tracked in
//!    `provisional`), refuse, or report busy(+favored), emitting a
//!    `Reply`.
//! 3. **round 2** — each requester folds its replies in sorted
//!    `(requester, supplier class, supplier)` order: greedily accepts
//!    grants up to exactly `R0`, emitting `Begin`/`Release` commits; on
//!    failure it releases everything, picks the reminder set Ω greedily
//!    over the busy-favored repliers, and schedules its backoff retry.
//! 4. **round 3** — suppliers commit: `Begin` starts the session (busy
//!    until `boundary + session`), `Release` clears the provisional
//!    grant, `Reminder` records the best reminder class.
//!
//! A serial **finalize** step then merges every shard's trace records
//! (sorted, folded into one FNV-1a digest), applies the pool
//! adds/removes in globally sorted order, accumulates the exact
//! fixed-point capacity delta, and samples the capacity/rejection
//! curves.
//!
//! # Determinism
//!
//! Every cross-shard effect flows through content-sorted boundary
//! exchanges, every random draw comes from the owning peer's private
//! SplitMix64 stream, and all merged metrics are integer sums — so a
//! given `(config, seed)` produces bit-identical traces for **any**
//! shard count and **any** thread count. The worker threads only pick
//! which shards they execute between barriers; they never influence
//! observable order.
//!
//! # Divergence from the legacy simulator
//!
//! [`crate::Simulation`] probes candidates one at a time and stops as
//! soon as `R0` is secured; the engine probes all `M` concurrently
//! (batched, like a pipelined implementation would) and resolves at the
//! boundary. Admission outcomes therefore differ in detail while
//! following the same §4.1/§4.2 rules; see `docs/AMPLIFICATION.md`.

use std::sync::{Barrier, Mutex, RwLock};
use std::time::Instant;

use p2ps_core::admission::Protocol;
use p2ps_core::Bandwidth;
use rand::distributions::{Distribution, Zipf};
use rand::rngs::SmallRng;
use rand::{RngCore, SeedableRng};

use super::config::AmpConfig;
use super::queue::IndexedHeap;
use super::report::{AmpReport, FoldCrossing};
use super::store::{flags, rng_next, rng_range, rng_stream, rng_unit, state, PeerStore};
use super::store::{PackedVector, NONE_U32};

// Event kinds, in tie-break order at equal timestamps.
const K_ATTEMPT: u8 = 0;
const K_COMPLETE: u8 = 1;
const K_RELEASE: u8 = 2;
const K_DEPART: u8 = 3;

// Trace record kinds.
const R_ATTEMPT: u8 = 0;
const R_ADMIT: u8 = 1;
const R_REJECT: u8 = 2;
const R_SUPPLY: u8 = 3;
const R_DEPART: u8 = 4;

// Reply verdicts, in sort order.
const V_GRANTED: u8 = 0;
const V_BUSY_FAVORED: u8 = 1;
const V_BUSY: u8 = 2;
const V_REFUSED: u8 = 3;

// Commit actions, in the order a supplier must apply them.
const A_BEGIN: u8 = 0;
const A_RELEASE: u8 = 1;
const A_REMIND: u8 = 2;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Packs one trace record: `t << 72 | kind << 64 | peer << 32 | aux`.
#[inline]
fn rec(t: u32, kind: u8, peer: u32, aux: u32) -> u128 {
    (u128::from(t) << 72) | (u128::from(kind) << 64) | (u128::from(peer) << 32) | u128::from(aux)
}

/// A probe from `requester` to `supplier` (routed to the supplier).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct Probe {
    supplier: u32,
    requester: u32,
    class: u8,
}

/// A supplier's answer (routed to the requester). Field order makes the
/// derived sort the requester's greedy order: supplier class ascending.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct Reply {
    requester: u32,
    sup_class: u8,
    supplier: u32,
    verdict: u8,
}

/// A requester's resolution (routed back to the supplier).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct Commit {
    supplier: u32,
    requester: u32,
    action: u8,
    class: u8,
}

/// A deferred supplier-pool mutation, applied at finalize in globally
/// sorted order so pool layout is shard-invariant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct PoolOp {
    item: u16,
    id: u32,
    add: bool,
}

impl Ord for PoolOp {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // For one peer, `add` must sort before `remove`: a supplier that
        // converts and churns out within the same epoch queues both ops,
        // and applying the removal first would pop a peer that is not in
        // the pool yet.
        (self.item, self.id, !self.add).cmp(&(other.item, other.id, !other.add))
    }
}

impl PartialOrd for PoolOp {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Per-shard outgoing messages for the current boundary.
#[derive(Debug, Default)]
struct Outbox {
    probes: Vec<Probe>,
    replies: Vec<Reply>,
    commits: Vec<Commit>,
}

/// The frozen supplier directory: per-item pools plus each peer's
/// position in its pool (for O(1) swap-removal).
#[derive(Debug, Default)]
struct Pools {
    by_item: Vec<Vec<u32>>,
    pos: Vec<u32>,
}

impl Pools {
    fn apply(&mut self, op: PoolOp) {
        let pool = &mut self.by_item[op.item as usize];
        if op.add {
            debug_assert_eq!(self.pos[op.id as usize], NONE_U32);
            self.pos[op.id as usize] = pool.len() as u32;
            pool.push(op.id);
        } else {
            let p = self.pos[op.id as usize];
            debug_assert_ne!(p, NONE_U32);
            pool.swap_remove(p as usize);
            self.pos[op.id as usize] = NONE_U32;
            if (p as usize) < pool.len() {
                self.pos[pool[p as usize] as usize] = p;
            }
        }
    }
}

/// One shard: peer state, event queue, inboxes, and epoch-local
/// accumulators. All buffers are reused across epochs.
#[derive(Debug, Default)]
struct Shard {
    store: PeerStore,
    queue: IndexedHeap<(u32, u8, u32)>,
    probes_in: Vec<Probe>,
    replies_in: Vec<Reply>,
    commits_in: Vec<Commit>,
    records: Vec<u128>,
    ops: Vec<PoolOp>,
    cand: Vec<u32>,
    accept: Vec<u32>,
    cap_delta: i64,
    e_attempts: u64,
    e_admits: u64,
    e_rejects: u64,
    e_supplies: u64,
    e_departs: u64,
    e_events: u64,
}

/// Serially merged run state.
#[derive(Debug, Default)]
struct Global {
    hash: u64,
    records: Vec<u128>,
    ops: Vec<PoolOp>,
    capacity_raw: i64,
    initial_capacity_raw: i64,
    next_fold_k: u32,
    fold_crossings: Vec<FoldCrossing>,
    capacity_curve: Vec<(u32, i64)>,
    rejection_curve: Vec<(u32, u64, u64)>,
    attempts: u64,
    admits: u64,
    rejects: u64,
    supplies: u64,
    departures: u64,
    events: u64,
    win_attempts: u64,
    win_rejects: u64,
}

/// Adapts a peer's raw SplitMix64 stream to [`rand::RngCore`] so the
/// vendored distributions (Zipf) can sample from it.
struct StreamRng<'a>(&'a mut u64);

impl RngCore for StreamRng<'_> {
    fn next_u32(&mut self) -> u32 {
        (rng_next(self.0) >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        rng_next(self.0)
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// The capacity-amplification engine. See `docs/AMPLIFICATION.md` for
/// the execution model and determinism guarantees.
///
/// # Examples
///
/// ```
/// use p2ps_sim::{AmpConfig, AmpEngine};
///
/// let config = AmpConfig::builder()
///     .requesting_peers(2_000)
///     .seed_suppliers(16)
///     .catalog_items(4)
///     .arrival_window_secs(3_600)
///     .horizon_secs(4 * 3_600)
///     .build()?;
/// let report = AmpEngine::new(config, 42).run();
/// assert!(report.admits > 0);
/// assert!(report.amplification() > 1.0);
/// # Ok::<(), p2ps_sim::AmpConfigError>(())
/// ```
pub struct AmpEngine {
    config: AmpConfig,
    seed: u64,
    offers: [i64; 17],
    class_cdf: Vec<f64>,
    zipf: Zipf,
    shards: Vec<Mutex<Shard>>,
    outboxes: Vec<RwLock<Outbox>>,
    pools: RwLock<Pools>,
    global: Mutex<Global>,
    consumed: bool,
    elapsed_micros: u64,
    threads_used: usize,
}

impl std::fmt::Debug for AmpEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AmpEngine")
            .field("config", &self.config)
            .field("seed", &self.seed)
            .field("consumed", &self.consumed)
            .finish_non_exhaustive()
    }
}

impl AmpEngine {
    /// Builds an engine for `config`, allocating every buffer and
    /// placing all peers; `run` itself stays allocation-free once the
    /// buffers have reached their high-water marks.
    pub fn new(config: AmpConfig, seed: u64) -> Self {
        let mut offers = [0i64; 17];
        for (class, slot) in offers.iter_mut().enumerate().skip(1) {
            if class as u8 <= config.num_classes() {
                *slot = config.offer_raw(class as u8);
            }
        }
        let total: f64 = config.class_mix().iter().sum();
        let mut acc = 0.0;
        let class_cdf = config
            .class_mix()
            .iter()
            .map(|w| {
                acc += w / total;
                acc
            })
            .collect();
        let zipf = Zipf::new(u64::from(config.catalog_items()), config.zipf_exponent());
        let shard_count = config.shards() as usize;
        let per_shard = (config.total_peers() as usize).div_ceil(shard_count);
        let mut engine = AmpEngine {
            shards: (0..shard_count)
                .map(|_| {
                    Mutex::new(Shard {
                        store: PeerStore::with_capacity(per_shard),
                        queue: IndexedHeap::with_capacity(per_shard * 2 + 16),
                        cand: Vec::with_capacity(config.m()),
                        accept: Vec::with_capacity(config.m()),
                        ..Shard::default()
                    })
                })
                .collect(),
            outboxes: (0..shard_count)
                .map(|_| RwLock::new(Outbox::default()))
                .collect(),
            pools: RwLock::new(Pools {
                by_item: vec![Vec::new(); config.catalog_items() as usize],
                pos: vec![NONE_U32; config.total_peers() as usize],
            }),
            global: Mutex::new(Global::default()),
            config,
            seed,
            offers,
            class_cdf,
            zipf,
            consumed: false,
            elapsed_micros: 0,
            threads_used: 0,
        };
        engine.setup();
        engine
    }

    /// The configuration this engine runs.
    pub fn config(&self) -> &AmpConfig {
        &self.config
    }

    /// The seed of the current/next run.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Re-derives the initial state for `seed`, keeping every buffer's
    /// capacity, so a following [`run`](Self::run) on a warmed engine
    /// performs zero allocations.
    pub fn reset(&mut self, seed: u64) {
        self.seed = seed;
        self.setup();
        self.consumed = false;
    }

    fn setup(&mut self) {
        let cfg = &self.config;
        let s_count = cfg.shards();
        let seeds = cfg.seed_suppliers();
        let total = cfg.total_peers();
        let items = cfg.catalog_items();
        let protocol = cfg.protocol();
        let num_classes = cfg.num_classes();

        // Arrival times come from one global stream so they are
        // independent of the shard layout.
        let mut arr_rng = SmallRng::seed_from_u64(self.seed ^ 0x00A4_4C1F);
        let arrivals = cfg.process().generate(
            cfg.requesting_peers() as usize,
            u64::from(cfg.arrival_window_secs()),
            &mut arr_rng,
        );

        {
            let mut pools = self.pools.write().unwrap();
            for pool in &mut pools.by_item {
                pool.clear();
            }
            pools.pos.clear();
            pools.pos.resize(total as usize, NONE_U32);
        }
        {
            // Reset the merged state field by field so every buffer
            // keeps its high-water capacity across `reset()`.
            let mut g = self.global.lock().unwrap();
            g.hash = 0;
            g.records.clear();
            g.ops.clear();
            g.capacity_raw = 0;
            g.initial_capacity_raw = 0;
            g.next_fold_k = 1;
            g.fold_crossings.clear();
            g.capacity_curve.clear();
            g.rejection_curve.clear();
            g.attempts = 0;
            g.admits = 0;
            g.rejects = 0;
            g.supplies = 0;
            g.departures = 0;
            g.events = 0;
            g.win_attempts = 0;
            g.win_rejects = 0;
        }

        let mut initial_capacity = 0i64;
        for (s, shard) in self.shards.iter().enumerate() {
            let mut shard = shard.lock().unwrap();
            let sh = &mut *shard;
            sh.store.clear();
            sh.queue.clear();
            sh.probes_in.clear();
            sh.replies_in.clear();
            sh.commits_in.clear();
            sh.records.clear();
            sh.ops.clear();
            sh.cap_delta = 0;
            sh.e_attempts = 0;
            sh.e_admits = 0;
            sh.e_rejects = 0;
            sh.e_supplies = 0;
            sh.e_departs = 0;
            sh.e_events = 0;
            let mut id = s as u32;
            while id < total {
                let mut stream = rng_stream(self.seed, u64::from(id));
                if id < seeds {
                    // Seeds: class 1, spread round-robin over the catalog
                    // so every item has at least one supplier when
                    // seeds >= items.
                    let item = (id % u32::from(items)) as u16;
                    let local = sh.store.push(1, item, state::SUPPLYING, stream);
                    sh.store.vector[local] = PackedVector::initial(1, num_classes, protocol);
                    sh.records.push(rec(0, R_SUPPLY, id, 1));
                    let mut pools = self.pools.write().unwrap();
                    pools.apply(PoolOp {
                        item,
                        id,
                        add: true,
                    });
                    initial_capacity += self.offers[1];
                } else {
                    let u = rng_unit(&mut stream);
                    let class =
                        (self.class_cdf.partition_point(|&c| c <= u) as u8 + 1).min(num_classes);
                    let item = (self.zipf.sample(&mut StreamRng(&mut stream)) - 1) as u16;
                    sh.store.push(class, item, state::WAITING, stream);
                    let at = arrivals[(id - seeds) as usize] as u32;
                    sh.queue.push((at, K_ATTEMPT, id));
                }
                id += s_count;
            }
        }
        let mut g = self.global.lock().unwrap();
        g.capacity_raw = initial_capacity;
        g.initial_capacity_raw = initial_capacity;
        // Anchor the evolution curve at the seed capacity so consumers
        // never have to special-case `t = 0`.
        g.capacity_curve.push((0, initial_capacity));
    }

    /// Executes the run and returns its report. Equivalent to
    /// [`execute`](Self::execute) followed by [`report`](Self::report).
    ///
    /// # Panics
    ///
    /// Panics if called twice without [`reset`](Self::reset) in
    /// between — the run consumes the scheduled state.
    pub fn run(&mut self) -> AmpReport {
        self.execute();
        self.report()
    }

    /// Executes the epoch loop without assembling a report. On a warmed
    /// engine (one prior identical run, then [`reset`](Self::reset))
    /// this performs **zero** heap allocations with `threads = 1`; the
    /// `zero_alloc_engine` integration test pins that.
    ///
    /// # Panics
    ///
    /// Panics if called twice without [`reset`](Self::reset).
    pub fn execute(&mut self) {
        assert!(
            !self.consumed,
            "AmpEngine::run called twice; call reset() first"
        );
        self.consumed = true;
        let start = Instant::now();
        let threads = self.config.threads().min(self.config.shards() as usize);
        if threads == 1 {
            self.run_inline();
        } else {
            let this = &*self;
            let barrier = Barrier::new(threads);
            std::thread::scope(|scope| {
                for w in 1..threads {
                    let barrier = &barrier;
                    scope.spawn(move || this.worker(w, threads, barrier));
                }
                this.worker(0, threads, &barrier);
            });
        }
        self.elapsed_micros = start.elapsed().as_micros() as u64;
        self.threads_used = threads;
    }

    /// Single-threaded driver: the same phase sequence, no barriers, no
    /// spawns — the allocation-free measurement path.
    fn run_inline(&self) {
        let epochs = self.config.epochs();
        let horizon = self.config.horizon_secs();
        let shard_count = self.shards.len();
        for epoch in 0..epochs {
            let t_end = ((u64::from(epoch) + 1) * u64::from(self.config.epoch_secs()))
                .min(u64::from(horizon)) as u32;
            for s in 0..shard_count {
                self.local_phase(s, t_end);
            }
            for s in 0..shard_count {
                self.route_probes(s);
            }
            for s in 0..shard_count {
                self.supplier_phase(s, t_end);
            }
            for s in 0..shard_count {
                self.route_replies(s);
            }
            for s in 0..shard_count {
                self.requester_phase(s, t_end);
            }
            for s in 0..shard_count {
                self.route_commits(s);
            }
            for s in 0..shard_count {
                self.commit_phase(s, t_end);
            }
            self.finalize(epoch, t_end);
        }
    }

    /// One worker of the multi-threaded driver: executes shards
    /// `w, w + threads, …` through the eight barrier-separated phases;
    /// worker 0 runs the serial finalize.
    fn worker(&self, w: usize, threads: usize, barrier: &Barrier) {
        let epochs = self.config.epochs();
        let horizon = self.config.horizon_secs();
        let shard_count = self.shards.len();
        let mine = || (w..shard_count).step_by(threads);
        for epoch in 0..epochs {
            let t_end = ((u64::from(epoch) + 1) * u64::from(self.config.epoch_secs()))
                .min(u64::from(horizon)) as u32;
            for s in mine() {
                self.local_phase(s, t_end);
            }
            barrier.wait();
            for s in mine() {
                self.route_probes(s);
            }
            barrier.wait();
            for s in mine() {
                self.supplier_phase(s, t_end);
            }
            barrier.wait();
            for s in mine() {
                self.route_replies(s);
            }
            barrier.wait();
            for s in mine() {
                self.requester_phase(s, t_end);
            }
            barrier.wait();
            for s in mine() {
                self.route_commits(s);
            }
            barrier.wait();
            for s in mine() {
                self.commit_phase(s, t_end);
            }
            barrier.wait();
            if w == 0 {
                self.finalize(epoch, t_end);
            }
            barrier.wait();
        }
    }

    /// Phase 1: drain this shard's events up to (excluding) `t_end`.
    fn local_phase(&self, s: usize, t_end: u32) {
        let cfg = &self.config;
        let mut shard = self.shards[s].lock().unwrap();
        let sh = &mut *shard;
        let mut out = self.outboxes[s].write().unwrap();
        out.probes.clear();
        let pools = self.pools.read().unwrap();
        let shard_count = cfg.shards();
        let horizon = cfg.horizon_secs();
        let m = cfg.m();
        while let Some(&(t, kind, id)) = sh.queue.peek() {
            if t >= t_end {
                break;
            }
            sh.queue.pop();
            sh.e_events += 1;
            let local = (id / shard_count) as usize;
            match kind {
                K_ATTEMPT => {
                    if sh.store.state[local] != state::WAITING {
                        continue;
                    }
                    if sh.store.first_request[local] == 0 && sh.store.rejections[local] == 0 {
                        sh.store.first_request[local] = t;
                    }
                    let rejections = sh.store.rejections[local];
                    sh.records
                        .push(rec(t, R_ATTEMPT, id, u32::from(rejections)));
                    sh.e_attempts += 1;
                    let pool = &pools.by_item[sh.store.item[local] as usize];
                    if pool.is_empty() {
                        // No supplier for this item yet: an immediate
                        // rejection, resolved locally.
                        reject(sh, cfg, local, id, t, horizon);
                        continue;
                    }
                    let class = sh.store.class[local];
                    sh.cand.clear();
                    if pool.len() <= m {
                        sh.cand.extend_from_slice(pool);
                    } else {
                        while sh.cand.len() < m {
                            let c = pool
                                [rng_range(&mut sh.store.rng[local], pool.len() as u32) as usize];
                            if !sh.cand.contains(&c) {
                                sh.cand.push(c);
                            }
                        }
                    }
                    for &supplier in &sh.cand {
                        out.probes.push(Probe {
                            supplier,
                            requester: id,
                            class,
                        });
                    }
                }
                K_COMPLETE => {
                    if sh.store.state[local] != state::STREAMING {
                        continue;
                    }
                    // Finished streaming: become a supplier of our own
                    // class (paper §2(1)).
                    let class = sh.store.class[local];
                    sh.store.state[local] = state::SUPPLYING;
                    sh.store.vector[local] =
                        PackedVector::initial(class, cfg.num_classes(), cfg.protocol());
                    sh.store.relax_anchor[local] = t;
                    sh.store.flags[local] = 0;
                    sh.store.provisional[local] = NONE_U32;
                    sh.store.best_reminder[local] = 0;
                    let item = sh.store.item[local];
                    sh.ops.push(PoolOp {
                        item,
                        id,
                        add: true,
                    });
                    sh.cap_delta += self.offers[class as usize];
                    sh.records.push(rec(t, R_SUPPLY, id, u32::from(class)));
                    sh.e_supplies += 1;
                    let lifetime = cfg.supplier_lifetime_secs();
                    if lifetime > 0 {
                        let u = rng_unit(&mut sh.store.rng[local]);
                        let dt = (-(1.0 - u).ln() * f64::from(lifetime)) as u64;
                        let when = u64::from(t) + dt.max(1);
                        if when < u64::from(horizon) {
                            sh.queue.push((when as u32, K_DEPART, id));
                        }
                    }
                }
                K_RELEASE => {
                    if sh.store.state[local] != state::SUPPLYING {
                        continue;
                    }
                    debug_assert_ne!(sh.store.flags[local] & flags::BUSY, 0);
                    sh.store.flags[local] &= !flags::BUSY;
                    if cfg.protocol() == Protocol::Dac {
                        // End-of-session §4.1(c): relax on a quiet
                        // session, tighten to the best reminder left by
                        // a favored-but-turned-away class.
                        if sh.store.flags[local] & flags::SAW_FAVORED == 0 {
                            sh.store.vector[local].relax(cfg.num_classes());
                        } else if sh.store.best_reminder[local] > 0 {
                            let to = sh.store.best_reminder[local];
                            sh.store.vector[local].tighten(to, cfg.num_classes());
                        }
                    }
                    sh.store.flags[local] &= !flags::SAW_FAVORED;
                    sh.store.best_reminder[local] = 0;
                    sh.store.relax_anchor[local] = t;
                    if sh.store.flags[local] & flags::PENDING_DEPART != 0 {
                        depart(sh, &self.offers, local, id, t);
                    }
                }
                K_DEPART => {
                    if sh.store.state[local] != state::SUPPLYING {
                        continue;
                    }
                    if sh.store.flags[local] & flags::BUSY != 0 {
                        // Mid-session: finish serving, then leave.
                        sh.store.flags[local] |= flags::PENDING_DEPART;
                    } else {
                        depart(sh, &self.offers, local, id, t);
                    }
                }
                _ => unreachable!("unknown event kind {kind}"),
            }
        }
    }

    /// Routes probes addressed to shard `s` into its sorted inbox.
    fn route_probes(&self, s: usize) {
        let shard_count = self.config.shards();
        let mut shard = self.shards[s].lock().unwrap();
        shard.probes_in.clear();
        for outbox in &self.outboxes {
            let outbox = outbox.read().unwrap();
            for p in &outbox.probes {
                if p.supplier % shard_count == s as u32 {
                    shard.probes_in.push(*p);
                }
            }
        }
        shard.probes_in.sort_unstable();
    }

    /// Round 1: suppliers answer their probes at boundary `tb`.
    fn supplier_phase(&self, s: usize, tb: u32) {
        let cfg = &self.config;
        let mut shard = self.shards[s].lock().unwrap();
        let sh = &mut *shard;
        let mut out = self.outboxes[s].write().unwrap();
        out.replies.clear();
        let shard_count = cfg.shards();
        for i in 0..sh.probes_in.len() {
            let p = sh.probes_in[i];
            sh.e_events += 1;
            let local = (p.supplier / shard_count) as usize;
            let sup_class = sh.store.class[local];
            let verdict = if sh.store.state[local] != state::SUPPLYING {
                // Candidate departed during this epoch's local phase —
                // the pool snapshot it was sampled from predates that.
                V_REFUSED
            } else {
                sh.store
                    .sync_supplier(local, tb, cfg.t_out_secs(), cfg.protocol());
                if sh.store.flags[local] & flags::BUSY != 0 {
                    if sh.store.vector[local].favors(p.class) {
                        sh.store.flags[local] |= flags::SAW_FAVORED;
                        V_BUSY_FAVORED
                    } else {
                        V_BUSY
                    }
                } else if sh.store.provisional[local] != NONE_U32 {
                    // Already granted this boundary; to a second
                    // requester the slot is taken.
                    V_BUSY
                } else if sh.store.vector[local].decide(p.class, rng_next(&mut sh.store.rng[local]))
                {
                    sh.store.provisional[local] = p.requester;
                    V_GRANTED
                } else {
                    V_REFUSED
                }
            };
            out.replies.push(Reply {
                requester: p.requester,
                sup_class,
                supplier: p.supplier,
                verdict,
            });
        }
    }

    /// Routes replies addressed to shard `s` into its sorted inbox.
    fn route_replies(&self, s: usize) {
        let shard_count = self.config.shards();
        let mut shard = self.shards[s].lock().unwrap();
        shard.replies_in.clear();
        for outbox in &self.outboxes {
            let outbox = outbox.read().unwrap();
            for r in &outbox.replies {
                if r.requester % shard_count == s as u32 {
                    shard.replies_in.push(*r);
                }
            }
        }
        shard.replies_in.sort_unstable();
    }

    /// Round 2: requesters fold their reply groups at boundary `tb`.
    fn requester_phase(&self, s: usize, tb: u32) {
        let cfg = &self.config;
        let mut shard = self.shards[s].lock().unwrap();
        let sh = &mut *shard;
        let mut out = self.outboxes[s].write().unwrap();
        out.commits.clear();
        let shard_count = cfg.shards();
        let horizon = cfg.horizon_secs();
        let full = i64::from(Bandwidth::FULL_RATE.raw());
        let mut i = 0;
        while i < sh.replies_in.len() {
            let id = sh.replies_in[i].requester;
            let mut j = i;
            while j < sh.replies_in.len() && sh.replies_in[j].requester == id {
                j += 1;
            }
            sh.e_events += 1;
            let local = (id / shard_count) as usize;
            let class = sh.store.class[local];
            // Greedy securing pass over the class-sorted grants
            // (`greedy_take` semantics; powers of two reach R0 exactly
            // whenever any subset does).
            sh.accept.clear();
            let mut total = 0i64;
            for (gi, r) in sh.replies_in[i..j].iter().enumerate() {
                if r.verdict == V_GRANTED && total < full {
                    let offer = self.offers[r.sup_class as usize];
                    if total + offer <= full {
                        total += offer;
                        sh.accept.push(gi as u32);
                    }
                }
            }
            if total == full {
                for (gi, r) in sh.replies_in[i..j].iter().enumerate() {
                    if r.verdict == V_GRANTED {
                        let action = if sh.accept.contains(&(gi as u32)) {
                            A_BEGIN
                        } else {
                            A_RELEASE
                        };
                        out.commits.push(Commit {
                            supplier: r.supplier,
                            requester: id,
                            action,
                            class,
                        });
                    }
                }
                sh.store.state[local] = state::STREAMING;
                sh.records
                    .push(rec(tb, R_ADMIT, id, sh.accept.len() as u32));
                sh.e_admits += 1;
                let done = u64::from(tb) + u64::from(cfg.session_secs());
                if done < u64::from(horizon) {
                    sh.queue.push((done as u32, K_COMPLETE, id));
                }
            } else {
                // Failure: release everything, remind the Ω set of
                // busy-favored suppliers greedily covering the
                // shortfall R0 - secured (paper §4.2).
                let shortfall = full - total;
                let mut covered = 0i64;
                for r in &sh.replies_in[i..j] {
                    match r.verdict {
                        V_GRANTED => out.commits.push(Commit {
                            supplier: r.supplier,
                            requester: id,
                            action: A_RELEASE,
                            class,
                        }),
                        V_BUSY_FAVORED => {
                            let offer = self.offers[r.sup_class as usize];
                            if covered < shortfall && covered + offer <= shortfall {
                                covered += offer;
                                out.commits.push(Commit {
                                    supplier: r.supplier,
                                    requester: id,
                                    action: A_REMIND,
                                    class,
                                });
                            }
                        }
                        _ => {}
                    }
                }
                reject(sh, cfg, local, id, tb, horizon);
            }
            i = j;
        }
    }

    /// Routes commits addressed to shard `s` into its sorted inbox.
    fn route_commits(&self, s: usize) {
        let shard_count = self.config.shards();
        let mut shard = self.shards[s].lock().unwrap();
        shard.commits_in.clear();
        for outbox in &self.outboxes {
            let outbox = outbox.read().unwrap();
            for c in &outbox.commits {
                if c.supplier % shard_count == s as u32 {
                    shard.commits_in.push(*c);
                }
            }
        }
        shard.commits_in.sort_unstable();
    }

    /// Round 3: suppliers apply begins, releases, and reminders.
    fn commit_phase(&self, s: usize, tb: u32) {
        let cfg = &self.config;
        let mut shard = self.shards[s].lock().unwrap();
        let sh = &mut *shard;
        let shard_count = cfg.shards();
        let horizon = cfg.horizon_secs();
        for i in 0..sh.commits_in.len() {
            let c = sh.commits_in[i];
            sh.e_events += 1;
            let local = (c.supplier / shard_count) as usize;
            match c.action {
                A_BEGIN => {
                    debug_assert_eq!(sh.store.provisional[local], c.requester);
                    debug_assert_eq!(sh.store.state[local], state::SUPPLYING);
                    sh.store.provisional[local] = NONE_U32;
                    sh.store.flags[local] &= !flags::SAW_FAVORED;
                    sh.store.flags[local] |= flags::BUSY;
                    sh.store.best_reminder[local] = 0;
                    let done = u64::from(tb) + u64::from(cfg.session_secs());
                    if done < u64::from(horizon) {
                        sh.queue.push((done as u32, K_RELEASE, c.supplier));
                    }
                }
                A_RELEASE => {
                    if sh.store.provisional[local] == c.requester {
                        sh.store.provisional[local] = NONE_U32;
                    }
                }
                A_REMIND => {
                    // Reference semantics: reminders only stick while
                    // the supplier is busy.
                    if sh.store.flags[local] & flags::BUSY != 0 {
                        let best = sh.store.best_reminder[local];
                        if best == 0 || c.class < best {
                            sh.store.best_reminder[local] = c.class;
                        }
                    }
                }
                _ => unreachable!("unknown commit action"),
            }
        }
    }

    /// Serial epoch finalize: merge traces, apply pool ops, advance
    /// capacity, and sample curves.
    fn finalize(&self, epoch: u32, t_end: u32) {
        let mut g = self.global.lock().unwrap();
        for shard in &self.shards {
            let mut shard = shard.lock().unwrap();
            let sh = &mut *shard;
            g.records.append(&mut sh.records);
            g.ops.append(&mut sh.ops);
            g.capacity_raw += sh.cap_delta;
            sh.cap_delta = 0;
            g.attempts += sh.e_attempts;
            g.admits += sh.e_admits;
            g.rejects += sh.e_rejects;
            g.supplies += sh.e_supplies;
            g.departures += sh.e_departs;
            g.events += sh.e_events;
            g.win_attempts += sh.e_attempts;
            g.win_rejects += sh.e_rejects;
            sh.e_attempts = 0;
            sh.e_admits = 0;
            sh.e_rejects = 0;
            sh.e_supplies = 0;
            sh.e_departs = 0;
            sh.e_events = 0;
        }
        g.records.sort_unstable();
        let mut hash = g.hash;
        if hash == 0 {
            hash = FNV_OFFSET;
        }
        for r in &g.records {
            for b in r.to_le_bytes() {
                hash ^= u64::from(b);
                hash = hash.wrapping_mul(FNV_PRIME);
            }
        }
        g.hash = hash;
        g.records.clear();
        g.ops.sort_unstable();
        {
            let mut pools = self.pools.write().unwrap();
            for i in 0..g.ops.len() {
                pools.apply(g.ops[i]);
            }
        }
        g.ops.clear();
        // Power-of-two amplification crossings against the seed
        // capacity (compared in i128: initial << k can exceed i64).
        while g.next_fold_k < 48
            && g.initial_capacity_raw > 0
            && i128::from(g.capacity_raw) >= i128::from(g.initial_capacity_raw) << g.next_fold_k
        {
            let factor = 1u64 << g.next_fold_k;
            g.fold_crossings.push(FoldCrossing {
                factor,
                at_secs: t_end,
            });
            g.next_fold_k += 1;
        }
        let epochs = self.config.epochs();
        let stride = (epochs / 256).max(1);
        if epoch % stride == stride - 1 || epoch + 1 == epochs {
            let cap = g.capacity_raw;
            g.capacity_curve.push((t_end, cap));
            let (wa, wr) = (g.win_attempts, g.win_rejects);
            g.rejection_curve.push((t_end, wa, wr));
            g.win_attempts = 0;
            g.win_rejects = 0;
        }
    }

    /// Assembles the report of the most recent
    /// [`execute`](Self::execute) (clones the merged state, so it can
    /// be called outside any allocation-counted region).
    pub fn report(&self) -> AmpReport {
        let g = self.global.lock().unwrap();
        AmpReport {
            peers: self.config.total_peers(),
            seeds: self.config.seed_suppliers(),
            shards: self.config.shards(),
            threads: self.threads_used,
            seed: self.seed,
            events: g.events,
            attempts: g.attempts,
            admits: g.admits,
            rejects: g.rejects,
            supplies: g.supplies,
            departures: g.departures,
            initial_capacity_raw: g.initial_capacity_raw,
            final_capacity_raw: g.capacity_raw,
            fold_crossings: g.fold_crossings.clone(),
            capacity_curve: g.capacity_curve.clone(),
            rejection_curve: g.rejection_curve.clone(),
            trace_hash: g.hash,
            elapsed_micros: self.elapsed_micros,
        }
    }
}

/// Records a rejection for `local`, schedules its backoff retry, and
/// bumps the epoch counters (shared by the empty-pool and boundary
/// paths).
fn reject(sh: &mut Shard, cfg: &AmpConfig, local: usize, id: u32, t: u32, horizon: u32) {
    let rejections = sh.store.rejections[local].saturating_add(1);
    sh.store.rejections[local] = rejections;
    sh.records.push(rec(t, R_REJECT, id, u32::from(rejections)));
    sh.e_rejects += 1;
    // §4.2 backoff: T_bkf · E_bkf^(i-1) after the i-th rejection.
    let exp = u32::from(rejections - 1).min(30);
    let delay =
        u64::from(cfg.t_bkf_secs()).saturating_mul(u64::from(cfg.e_bkf()).saturating_pow(exp));
    let retry = u64::from(t).saturating_add(delay);
    if retry < u64::from(horizon) {
        sh.queue.push((retry as u32, K_ATTEMPT, id));
    }
    // Else: backed off past the horizon — the peer gives up.
}

/// Removes `local` from the system: pool removal op, capacity delta,
/// and the departure trace record.
fn depart(sh: &mut Shard, offers: &[i64; 17], local: usize, id: u32, t: u32) {
    sh.store.state[local] = state::DEPARTED;
    sh.store.flags[local] = 0;
    let item = sh.store.item[local];
    sh.ops.push(PoolOp {
        item,
        id,
        add: false,
    });
    sh.cap_delta -= offers[sh.store.class[local] as usize];
    sh.records.push(rec(t, R_DEPART, id, 0));
    sh.e_departs += 1;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ArrivalProcess;

    fn small_config() -> AmpConfig {
        AmpConfig::builder()
            .requesting_peers(2_000)
            .seed_suppliers(16)
            .catalog_items(4)
            .arrival_window_secs(2 * 3_600)
            .horizon_secs(6 * 3_600)
            .epoch_secs(60)
            .build()
            .unwrap()
    }

    #[test]
    fn small_run_amplifies_capacity() {
        let report = AmpEngine::new(small_config(), 7).run();
        assert!(report.attempts > 0);
        assert!(report.admits > 0, "no admissions: {report:?}");
        assert!(report.supplies > report.seeds as u64 / 2);
        assert!(
            report.amplification() > 2.0,
            "amp {}",
            report.amplification()
        );
        assert!(report.events > 0);
        assert_ne!(report.trace_hash, 0);
        assert!(!report.capacity_curve.is_empty());
        assert!(report.time_to_fold(2).is_some());
        // Crossings are monotone in factor and time.
        for w in report.fold_crossings.windows(2) {
            assert!(w[0].factor < w[1].factor);
            assert!(w[0].at_secs <= w[1].at_secs);
        }
    }

    #[test]
    fn same_seed_reproduces_the_trace_exactly() {
        let a = AmpEngine::new(small_config(), 99).run();
        let b = AmpEngine::new(small_config(), 99).run();
        assert_eq!(a.trace_hash, b.trace_hash);
        assert_eq!(a.capacity_curve, b.capacity_curve);
        assert_eq!(a.events, b.events);
        let c = AmpEngine::new(small_config(), 100).run();
        assert_ne!(a.trace_hash, c.trace_hash);
    }

    #[test]
    fn thread_count_does_not_change_the_trace() {
        let mut builder = AmpConfig::builder();
        builder
            .requesting_peers(2_000)
            .seed_suppliers(16)
            .catalog_items(4)
            .arrival_window_secs(3_600)
            .horizon_secs(3 * 3_600)
            .shards(4);
        let base = AmpEngine::new(builder.build().unwrap(), 5).run();
        for threads in [2usize, 4] {
            let cfg = builder.threads(threads).build().unwrap();
            let r = AmpEngine::new(cfg, 5).run();
            assert_eq!(r.trace_hash, base.trace_hash, "threads {threads}");
            assert_eq!(r.final_capacity_raw, base.final_capacity_raw);
            assert_eq!(r.admits, base.admits);
        }
    }

    #[test]
    fn shard_count_does_not_change_the_trace() {
        let mut builder = AmpConfig::builder();
        builder
            .requesting_peers(1_500)
            .seed_suppliers(12)
            .catalog_items(3)
            .arrival_window_secs(3_600)
            .horizon_secs(3 * 3_600);
        let base = AmpEngine::new(builder.shards(1).build().unwrap(), 11).run();
        for shards in [2u32, 4, 7] {
            let cfg = builder.shards(shards).build().unwrap();
            let r = AmpEngine::new(cfg, 11).run();
            assert_eq!(r.trace_hash, base.trace_hash, "shards {shards}");
            assert_eq!(r.capacity_curve, base.capacity_curve);
            assert_eq!(r.rejection_curve, base.rejection_curve);
        }
    }

    #[test]
    fn ndac_and_dac_produce_different_traces() {
        let mut builder = AmpConfig::builder();
        builder
            .requesting_peers(1_000)
            .seed_suppliers(8)
            .catalog_items(2)
            .arrival_window_secs(3_600)
            .horizon_secs(2 * 3_600);
        let dac = AmpEngine::new(builder.build().unwrap(), 3).run();
        let ndac = AmpEngine::new(builder.protocol(Protocol::Ndac).build().unwrap(), 3).run();
        assert_ne!(dac.trace_hash, ndac.trace_hash);
    }

    #[test]
    fn churn_causes_departures_and_caps_growth() {
        let mut builder = AmpConfig::builder();
        builder
            .requesting_peers(1_500)
            .seed_suppliers(12)
            .catalog_items(3)
            .arrival_window_secs(3_600)
            .horizon_secs(4 * 3_600);
        let stable = AmpEngine::new(builder.build().unwrap(), 21).run();
        let churned =
            AmpEngine::new(builder.supplier_lifetime_secs(1_800).build().unwrap(), 21).run();
        assert_eq!(stable.departures, 0);
        assert!(churned.departures > 0);
        assert!(churned.final_capacity_raw < stable.final_capacity_raw);
    }

    #[test]
    fn same_epoch_convert_and_depart_applies_in_order() {
        // A lifetime shorter than one epoch makes many suppliers queue
        // their pool `add` and churn `remove` at the same finalize;
        // PoolOp ordering must apply the add first (regression: the
        // derived Ord sorted removes first and finalize panicked).
        let mut builder = AmpConfig::builder();
        builder
            .requesting_peers(1_500)
            .seed_suppliers(12)
            .catalog_items(3)
            .supplier_lifetime_secs(30)
            .arrival_window_secs(3_600)
            .horizon_secs(4 * 3_600)
            .epoch_secs(60);
        let r = AmpEngine::new(builder.build().unwrap(), 5).run();
        assert!(r.departures > 0);
        let r2 = AmpEngine::new(builder.shards(2).build().unwrap(), 5).run();
        assert_eq!(r.trace_hash, r2.trace_hash);
    }

    #[test]
    fn flash_crowd_process_runs_to_completion() {
        let mut builder = AmpConfig::builder();
        builder
            .requesting_peers(1_500)
            .seed_suppliers(12)
            .catalog_items(3)
            .process(ArrivalProcess::flash_crowd())
            .arrival_window_secs(3_600)
            .horizon_secs(4 * 3_600);
        let r = AmpEngine::new(builder.build().unwrap(), 17).run();
        assert!(r.admits > 0);
        assert!(r.rejects > 0, "a flash crowd should saturate early seeds");
    }

    #[test]
    fn reset_reproduces_and_rerun_without_reset_panics() {
        let mut engine = AmpEngine::new(small_config(), 42);
        let first = engine.run();
        engine.reset(42);
        let second = engine.run();
        assert_eq!(first.trace_hash, second.trace_hash);
        assert_eq!(first.events, second.events);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| engine.run()));
        assert!(result.is_err(), "second run without reset must panic");
    }
}
