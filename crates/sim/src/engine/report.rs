//! Results of one amplification run.

use serde::{Deserialize, Serialize};

use p2ps_core::Bandwidth;
use p2ps_metrics::{eng, Table};

/// The first time serving capacity reached `factor ×` the seed
/// capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FoldCrossing {
    /// Power-of-two amplification factor (2, 4, 8, …).
    pub factor: u64,
    /// Virtual time of the first epoch boundary at or past the
    /// crossing, in seconds.
    pub at_secs: u32,
}

/// Everything one [`super::AmpEngine`] run measures: exact integer
/// counters, the capacity-evolution and rejection-rate curves, the
/// time-to-N-fold crossings, and the FNV-1a trace digest that pins the
/// run bit-for-bit across shard and thread counts.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AmpReport {
    /// Total population (seeds + requesters).
    pub peers: u32,
    /// Seed suppliers at `t = 0`.
    pub seeds: u32,
    /// Logical shard count of the run.
    pub shards: u32,
    /// Worker threads actually used.
    pub threads: usize,
    /// The run's seed.
    pub seed: u64,
    /// Events processed (local events + protocol messages).
    pub events: u64,
    /// Admission attempts issued.
    pub attempts: u64,
    /// Attempts that secured exactly `R0`.
    pub admits: u64,
    /// Attempts that failed and backed off.
    pub rejects: u64,
    /// Peers that finished streaming and became suppliers.
    pub supplies: u64,
    /// Suppliers that departed (churn).
    pub departures: u64,
    /// Seed serving capacity in `R0/2^16` fixed-point units.
    pub initial_capacity_raw: i64,
    /// Final serving capacity in the same units.
    pub final_capacity_raw: i64,
    /// First crossing times of each power-of-two amplification factor.
    pub fold_crossings: Vec<FoldCrossing>,
    /// `(t_secs, capacity_raw)` samples of the capacity evolution.
    pub capacity_curve: Vec<(u32, i64)>,
    /// `(t_secs, attempts, rejects)` per sampling window.
    pub rejection_curve: Vec<(u32, u64, u64)>,
    /// FNV-1a digest over the sorted per-epoch trace records.
    pub trace_hash: u64,
    /// Wall-clock duration of the run, in microseconds.
    pub elapsed_micros: u64,
}

impl AmpReport {
    /// Final capacity as a multiple of the seed capacity — the paper's
    /// capacity-amplification measure.
    pub fn amplification(&self) -> f64 {
        if self.initial_capacity_raw == 0 {
            return 0.0;
        }
        self.final_capacity_raw as f64 / self.initial_capacity_raw as f64
    }

    /// Final capacity in units of the playback rate `R0`.
    pub fn final_capacity(&self) -> f64 {
        self.final_capacity_raw as f64 / f64::from(Bandwidth::FULL_RATE.raw())
    }

    /// Virtual seconds until capacity first reached `factor ×` the seed
    /// capacity, if it did. `factor` must be a power of two.
    pub fn time_to_fold(&self, factor: u64) -> Option<u32> {
        self.fold_crossings
            .iter()
            .find(|c| c.factor == factor)
            .map(|c| c.at_secs)
    }

    /// Fraction of attempts that were admitted.
    pub fn admission_rate(&self) -> f64 {
        if self.attempts == 0 {
            return 0.0;
        }
        self.admits as f64 / self.attempts as f64
    }

    /// Wall-clock duration of the run.
    pub fn elapsed(&self) -> std::time::Duration {
        std::time::Duration::from_micros(self.elapsed_micros)
    }

    /// Peers simulated per wall-clock second.
    pub fn peers_per_sec(&self) -> f64 {
        let secs = self.elapsed_micros as f64 / 1e6;
        if secs == 0.0 {
            return 0.0;
        }
        f64::from(self.peers) / secs
    }

    /// Events processed per wall-clock second.
    pub fn events_per_sec(&self) -> f64 {
        let secs = self.elapsed_micros as f64 / 1e6;
        if secs == 0.0 {
            return 0.0;
        }
        self.events as f64 / secs
    }

    /// Renders the headline metrics as an aligned two-column table; the
    /// fixed-width [`eng`] notation keeps a 10⁶-peer row exactly as
    /// wide as a 10²-peer one.
    pub fn table(&self) -> String {
        let mut table = Table::new(["metric", "value"]);
        let row = |t: &mut Table, k: &str, v: String| {
            t.row([k.to_string(), v]);
        };
        row(&mut table, "peers", eng(f64::from(self.peers)));
        row(&mut table, "seeds", eng(f64::from(self.seeds)));
        row(&mut table, "events", eng(self.events as f64));
        row(&mut table, "attempts", eng(self.attempts as f64));
        row(&mut table, "admits", eng(self.admits as f64));
        row(&mut table, "rejects", eng(self.rejects as f64));
        row(&mut table, "suppliers", eng(self.supplies as f64));
        row(&mut table, "departures", eng(self.departures as f64));
        row(&mut table, "capacity (R0)", eng(self.final_capacity()));
        row(
            &mut table,
            "amplification",
            format!("{:.2}x", self.amplification()),
        );
        for c in &self.fold_crossings {
            row(
                &mut table,
                &format!("t to {}x", c.factor),
                format!("{:>7.2}h", f64::from(c.at_secs) / 3_600.0),
            );
        }
        row(&mut table, "events/sec", eng(self.events_per_sec()));
        row(&mut table, "peers/sec", eng(self.peers_per_sec()));
        row(
            &mut table,
            "trace hash",
            format!("{:016x}", self.trace_hash),
        );
        table.render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> AmpReport {
        AmpReport {
            peers: 1_000_064,
            seeds: 64,
            shards: 4,
            threads: 4,
            seed: 42,
            events: 12_345_678,
            attempts: 2_000_000,
            admits: 900_000,
            rejects: 1_100_000,
            supplies: 900_000,
            departures: 10_000,
            initial_capacity_raw: 64 * 32_768,
            final_capacity_raw: 64 * 32_768 * 128,
            fold_crossings: vec![
                FoldCrossing {
                    factor: 2,
                    at_secs: 3_600,
                },
                FoldCrossing {
                    factor: 4,
                    at_secs: 7_200,
                },
            ],
            capacity_curve: vec![(0, 64 * 32_768)],
            rejection_curve: vec![(3_600, 100, 40)],
            trace_hash: 0xDEAD_BEEF,
            elapsed_micros: 2_000_000,
        }
    }

    #[test]
    fn derived_metrics() {
        let r = sample();
        assert_eq!(r.amplification(), 128.0);
        assert_eq!(r.time_to_fold(2), Some(3_600));
        assert_eq!(r.time_to_fold(4), Some(7_200));
        assert_eq!(r.time_to_fold(8), None);
        assert!((r.admission_rate() - 0.45).abs() < 1e-12);
        // Seeds offer R0/2 each (32,768 raw), so 64 seeds amplified
        // 128-fold serve 4,096 full-rate streams.
        assert_eq!(r.final_capacity(), 4_096.0);
        assert!((r.peers_per_sec() - 500_032.0).abs() < 1.0);
        assert_eq!(r.elapsed().as_secs(), 2);
    }

    #[test]
    fn table_rows_align_across_magnitudes() {
        let text = sample().table();
        assert!(text.contains("amplification"));
        assert!(text.contains("128.00x"));
        assert!(text.contains("t to 2x"));
        // The eng()-formatted count rows align on the decimal point
        // even though they span 64 to 12.3 million.
        let dots: Vec<usize> = text
            .lines()
            .filter(|l| {
                ["peers ", "seeds ", "events ", "attempts "]
                    .iter()
                    .any(|k| l.starts_with(k))
            })
            .map(|l| l.find('.').unwrap())
            .collect();
        assert_eq!(dots.len(), 4, "{text}");
        assert!(dots.windows(2).all(|w| w[0] == w[1]), "{text}");
    }

    #[test]
    fn zero_denominators_do_not_panic() {
        let mut r = sample();
        r.initial_capacity_raw = 0;
        r.attempts = 0;
        r.elapsed_micros = 0;
        assert_eq!(r.amplification(), 0.0);
        assert_eq!(r.admission_rate(), 0.0);
        assert_eq!(r.peers_per_sec(), 0.0);
        assert_eq!(r.events_per_sec(), 0.0);
    }
}
