//! Simulation configuration.

use serde::{Deserialize, Serialize};

use p2ps_core::admission::Protocol;
use p2ps_core::PeerClass;

use crate::{ArrivalPattern, HOUR, MINUTE};

/// Configuration errors raised by [`SimConfigBuilder::build`].
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ConfigError {
    /// The per-class mix does not have one weight per class or sums to 0.
    BadClassMix,
    /// Number of classes outside `1..=PeerClass::MAX`.
    BadClassCount(u8),
    /// The arrival window exceeds the simulation duration.
    WindowExceedsDuration,
    /// Zero requesting peers and zero seeds — nothing to simulate.
    EmptySystem,
    /// `m` (candidates per probe) must be at least 1.
    ZeroCandidates,
    /// Session duration must be positive.
    ZeroSessionDuration,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::BadClassMix => {
                write!(f, "class mix must have one positive-sum weight per class")
            }
            ConfigError::BadClassCount(k) => write!(f, "invalid class count {k}"),
            ConfigError::WindowExceedsDuration => {
                write!(f, "arrival window exceeds simulation duration")
            }
            ConfigError::EmptySystem => write!(f, "no peers to simulate"),
            ConfigError::ZeroCandidates => write!(f, "need at least one candidate per probe"),
            ConfigError::ZeroSessionDuration => write!(f, "session duration must be positive"),
        }
    }
}

impl std::error::Error for ConfigError {}

/// Full parameterization of one simulation run.
///
/// Defaults reproduce the paper's §5.1 setup: 100 class-1 seeds, 50,000
/// requesting peers (classes 1–4 at 10/10/40/40 %), `M = 8`,
/// `T_out = 20 min`, `T_bkf = 10 min`, `E_bkf = 2`, a 60-minute show, a
/// 72-hour arrival window and a 144-hour horizon.
///
/// # Examples
///
/// ```
/// use p2ps_sim::SimConfig;
///
/// let paper = SimConfig::paper_defaults();
/// assert_eq!(paper.requesting_peers(), 50_000);
/// assert_eq!(paper.m(), 8);
/// let small = SimConfig::builder().requesting_peers(100).build()?;
/// assert_eq!(small.requesting_peers(), 100);
/// # Ok::<(), p2ps_sim::ConfigError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    seed_suppliers: u32,
    seed_class: PeerClass,
    requesting_peers: u32,
    num_classes: u8,
    class_mix: Vec<f64>,
    m: usize,
    t_out_secs: u64,
    t_bkf_secs: u64,
    e_bkf: u32,
    session_secs: u64,
    arrival_window_secs: u64,
    duration_secs: u64,
    pattern: ArrivalPattern,
    protocol: Protocol,
    down_probability: f64,
    snapshot_secs: u64,
    favored_window_secs: u64,
    bandwidth_shift: u8,
    reminders_enabled: bool,
    session_relax_enabled: bool,
    supplier_lifetime_secs: Option<u64>,
}

impl SimConfig {
    /// A builder preloaded with the paper's defaults.
    pub fn builder() -> SimConfigBuilder {
        SimConfigBuilder::default()
    }

    /// The exact §5.1 configuration (50,100 peers, 144 h).
    pub fn paper_defaults() -> Self {
        SimConfig::builder()
            .build()
            .expect("paper defaults are valid")
    }

    /// Number of seed supplying peers present at `t = 0`.
    pub fn seed_suppliers(&self) -> u32 {
        self.seed_suppliers
    }

    /// Class of the seed suppliers (class 1 in the paper).
    pub fn seed_class(&self) -> PeerClass {
        self.seed_class
    }

    /// Number of requesting peers arriving during the window.
    pub fn requesting_peers(&self) -> u32 {
        self.requesting_peers
    }

    /// Number of bandwidth classes `K`.
    pub fn num_classes(&self) -> u8 {
        self.num_classes
    }

    /// Relative weight of each class among requesting peers.
    pub fn class_mix(&self) -> &[f64] {
        &self.class_mix
    }

    /// Candidates probed per admission attempt (the paper's `M`).
    pub fn m(&self) -> usize {
        self.m
    }

    /// Idle relaxation timeout `T_out` in seconds.
    pub fn t_out_secs(&self) -> u64 {
        self.t_out_secs
    }

    /// Base backoff `T_bkf` in seconds.
    pub fn t_bkf_secs(&self) -> u64 {
        self.t_bkf_secs
    }

    /// Exponential backoff factor `E_bkf`.
    pub fn e_bkf(&self) -> u32 {
        self.e_bkf
    }

    /// Streaming session duration `T` (the show time) in seconds.
    pub fn session_secs(&self) -> u64 {
        self.session_secs
    }

    /// First-time arrival window in seconds (72 h in the paper).
    pub fn arrival_window_secs(&self) -> u64 {
        self.arrival_window_secs
    }

    /// Total simulated time in seconds (144 h in the paper).
    pub fn duration_secs(&self) -> u64 {
        self.duration_secs
    }

    /// The first-time request arrival pattern.
    pub fn pattern(&self) -> &ArrivalPattern {
        &self.pattern
    }

    /// Which admission protocol suppliers run.
    pub fn protocol(&self) -> Protocol {
        self.protocol
    }

    /// Probability that a probed candidate is down (transiently
    /// unreachable); `0.0` in the paper's setup.
    pub fn down_probability(&self) -> f64 {
        self.down_probability
    }

    /// Metric snapshot interval in seconds (1 h by default).
    pub fn snapshot_secs(&self) -> u64 {
        self.snapshot_secs
    }

    /// Window for the Fig.-7 lowest-favored-class average (3 h default).
    pub fn favored_window_secs(&self) -> u64 {
        self.favored_window_secs
    }

    /// Bandwidth scale shift: a (protocol-)class-`k` peer offers
    /// `R0 / 2^(k - 1 + shift)`.
    ///
    /// The paper's §2 model reads `shift = 0` (class 1 offers the full
    /// playback rate), but every quantitative aspect of its §5 evaluation —
    /// final capacity ≈ 7.5k not 15.1k, buffering delays never below
    /// `2·δt`, the capacity collapse at `M = 4` — is only reproducible
    /// with `shift = 1` (class-`k` offers `R0/2^k`, so no single peer can
    /// serve a session alone). The default is therefore `1`; set `0` to
    /// exercise the literal §2 scale. See DESIGN.md §4.6.
    pub fn bandwidth_shift(&self) -> u8 {
        self.bandwidth_shift
    }

    /// The *offered-bandwidth* class of a protocol-class-`class` peer
    /// under this configuration's
    /// [`bandwidth_shift`](Self::bandwidth_shift): `class + shift`. The
    /// selection policies plan sessions over these classes.
    pub fn offered_class(&self, class: PeerClass) -> PeerClass {
        PeerClass::new(class.get() + self.bandwidth_shift)
            .expect("validated: class + shift within range")
    }

    /// The out-bound bandwidth a peer of protocol class `class` offers
    /// under this configuration's [`bandwidth_shift`](Self::bandwidth_shift).
    pub fn offer_of(&self, class: PeerClass) -> p2ps_core::Bandwidth {
        self.offered_class(class).bandwidth()
    }

    /// Whether the reminder mechanism is active (ablation switch,
    /// default `true`).
    pub fn reminders_enabled(&self) -> bool {
        self.reminders_enabled
    }

    /// Whether end-of-session relaxation is active (ablation switch,
    /// default `true`).
    pub fn session_relax_enabled(&self) -> bool {
        self.session_relax_enabled
    }

    /// How long a peer keeps supplying after it becomes a supplier, or
    /// `None` for the paper's model (suppliers never leave). This *churn*
    /// extension stresses the protocols' resilience; see the `churn`
    /// experiment binary.
    pub fn supplier_lifetime_secs(&self) -> Option<u64> {
        self.supplier_lifetime_secs
    }

    /// The maximum possible capacity: every peer (seeds + requesters)
    /// supplying, in expectation over the class mix, at this
    /// configuration's bandwidth scale.
    pub fn expected_max_capacity(&self) -> f64 {
        let mix_total: f64 = self.class_mix.iter().sum();
        let mut cap =
            self.seed_suppliers as f64 * self.offer_of(self.seed_class).fraction_of_rate();
        for (i, w) in self.class_mix.iter().enumerate() {
            let class = PeerClass::new(i as u8 + 1).expect("validated");
            cap += self.requesting_peers as f64
                * (w / mix_total)
                * self.offer_of(class).fraction_of_rate();
        }
        cap
    }
}

/// Builder for [`SimConfig`] (non-consuming, per the API guidelines).
#[derive(Debug, Clone)]
pub struct SimConfigBuilder {
    config: SimConfig,
}

impl Default for SimConfigBuilder {
    fn default() -> Self {
        SimConfigBuilder {
            config: SimConfig {
                seed_suppliers: 100,
                seed_class: PeerClass::HIGHEST,
                requesting_peers: 50_000,
                num_classes: 4,
                class_mix: vec![0.10, 0.10, 0.40, 0.40],
                m: 8,
                t_out_secs: 20 * MINUTE,
                t_bkf_secs: 10 * MINUTE,
                e_bkf: 2,
                session_secs: 60 * MINUTE,
                arrival_window_secs: 72 * HOUR,
                duration_secs: 144 * HOUR,
                pattern: ArrivalPattern::Ramp,
                protocol: Protocol::Dac,
                down_probability: 0.0,
                snapshot_secs: HOUR,
                favored_window_secs: 3 * HOUR,
                bandwidth_shift: 1,
                reminders_enabled: true,
                session_relax_enabled: true,
                supplier_lifetime_secs: None,
            },
        }
    }
}

impl SimConfigBuilder {
    /// Sets the number of seed suppliers.
    pub fn seed_suppliers(&mut self, n: u32) -> &mut Self {
        self.config.seed_suppliers = n;
        self
    }

    /// Sets the class of seed suppliers.
    pub fn seed_class(&mut self, class: PeerClass) -> &mut Self {
        self.config.seed_class = class;
        self
    }

    /// Sets the number of requesting peers.
    pub fn requesting_peers(&mut self, n: u32) -> &mut Self {
        self.config.requesting_peers = n;
        self
    }

    /// Sets the number of classes and their mix weights.
    pub fn class_mix(&mut self, weights: Vec<f64>) -> &mut Self {
        self.config.num_classes = weights.len() as u8;
        self.config.class_mix = weights;
        self
    }

    /// Sets `M`, the candidates probed per attempt.
    pub fn m(&mut self, m: usize) -> &mut Self {
        self.config.m = m;
        self
    }

    /// Sets `T_out` in minutes (paper units).
    pub fn t_out_minutes(&mut self, minutes: u64) -> &mut Self {
        self.config.t_out_secs = minutes * MINUTE;
        self
    }

    /// Sets `T_bkf` in minutes (paper units).
    pub fn t_bkf_minutes(&mut self, minutes: u64) -> &mut Self {
        self.config.t_bkf_secs = minutes * MINUTE;
        self
    }

    /// Sets the exponential backoff factor `E_bkf`.
    pub fn e_bkf(&mut self, factor: u32) -> &mut Self {
        self.config.e_bkf = factor;
        self
    }

    /// Sets the session (show) duration in minutes.
    pub fn session_minutes(&mut self, minutes: u64) -> &mut Self {
        self.config.session_secs = minutes * MINUTE;
        self
    }

    /// Sets the first-time arrival window in hours.
    pub fn arrival_window_hours(&mut self, hours: u64) -> &mut Self {
        self.config.arrival_window_secs = hours * HOUR;
        self
    }

    /// Sets the simulated horizon in hours.
    pub fn duration_hours(&mut self, hours: u64) -> &mut Self {
        self.config.duration_secs = hours * HOUR;
        self
    }

    /// Sets the arrival pattern.
    pub fn pattern(&mut self, pattern: ArrivalPattern) -> &mut Self {
        self.config.pattern = pattern;
        self
    }

    /// Sets the admission protocol.
    pub fn protocol(&mut self, protocol: Protocol) -> &mut Self {
        self.config.protocol = protocol;
        self
    }

    /// Sets the probability that a probed candidate is down.
    pub fn down_probability(&mut self, p: f64) -> &mut Self {
        self.config.down_probability = p;
        self
    }

    /// Sets the bandwidth scale shift (see
    /// [`SimConfig::bandwidth_shift`]). `1` reproduces the paper's
    /// evaluation; `0` is the literal §2 model.
    pub fn bandwidth_shift(&mut self, shift: u8) -> &mut Self {
        self.config.bandwidth_shift = shift;
        self
    }

    /// Ablation switch: enables/disables the reminder mechanism.
    pub fn reminders(&mut self, enabled: bool) -> &mut Self {
        self.config.reminders_enabled = enabled;
        self
    }

    /// Ablation switch: enables/disables end-of-session relaxation.
    pub fn session_relax(&mut self, enabled: bool) -> &mut Self {
        self.config.session_relax_enabled = enabled;
        self
    }

    /// Churn extension: suppliers depart this many hours after becoming a
    /// supplier (`None`/unset = the paper's no-departure model).
    pub fn supplier_lifetime_hours(&mut self, hours: u64) -> &mut Self {
        self.config.supplier_lifetime_secs = Some(hours * HOUR);
        self
    }

    /// Sets the metric snapshot interval in seconds.
    pub fn snapshot_secs(&mut self, secs: u64) -> &mut Self {
        self.config.snapshot_secs = secs;
        self
    }

    /// Validates and produces the configuration.
    ///
    /// # Errors
    ///
    /// Any [`ConfigError`] describing the first violated constraint.
    pub fn build(&self) -> Result<SimConfig, ConfigError> {
        let c = &self.config;
        if c.num_classes == 0 || c.num_classes > PeerClass::MAX {
            return Err(ConfigError::BadClassCount(c.num_classes));
        }
        if c.class_mix.len() != c.num_classes as usize
            || c.class_mix
                .iter()
                .any(|&w| w.is_nan() || w < 0.0 || !w.is_finite())
            || c.class_mix.iter().sum::<f64>() <= 0.0
        {
            return Err(ConfigError::BadClassMix);
        }
        if c.seed_class.get() > c.num_classes {
            return Err(ConfigError::BadClassCount(c.seed_class.get()));
        }
        if c.arrival_window_secs > c.duration_secs {
            return Err(ConfigError::WindowExceedsDuration);
        }
        if c.seed_suppliers == 0 && c.requesting_peers == 0 {
            return Err(ConfigError::EmptySystem);
        }
        if c.m == 0 {
            return Err(ConfigError::ZeroCandidates);
        }
        if c.session_secs == 0 {
            return Err(ConfigError::ZeroSessionDuration);
        }
        if c.num_classes.saturating_add(c.bandwidth_shift) > PeerClass::MAX {
            return Err(ConfigError::BadClassCount(
                c.num_classes.saturating_add(c.bandwidth_shift),
            ));
        }
        Ok(c.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_match_section_5_1() {
        let c = SimConfig::paper_defaults();
        assert_eq!(c.seed_suppliers(), 100);
        assert_eq!(c.seed_class(), PeerClass::HIGHEST);
        assert_eq!(c.requesting_peers(), 50_000);
        assert_eq!(c.num_classes(), 4);
        assert_eq!(c.class_mix(), &[0.10, 0.10, 0.40, 0.40]);
        assert_eq!(c.m(), 8);
        assert_eq!(c.t_out_secs(), 1_200);
        assert_eq!(c.t_bkf_secs(), 600);
        assert_eq!(c.e_bkf(), 2);
        assert_eq!(c.session_secs(), 3_600);
        assert_eq!(c.arrival_window_secs(), 72 * HOUR);
        assert_eq!(c.duration_secs(), 144 * HOUR);
        assert_eq!(c.protocol(), Protocol::Dac);
        assert_eq!(c.down_probability(), 0.0);
        assert_eq!(c.favored_window_secs(), 3 * HOUR);
    }

    #[test]
    fn expected_max_capacity_matches_paper_model() {
        // Evaluation scale (shift 1): 100·0.5 + 50,000·(0.1·0.5 + 0.1·0.25
        // + 0.4·0.125 + 0.4·0.0625) = 7,550 — consistent with the paper's
        // Fig. 4 axis and its "95% of maximum" claim.
        let c = SimConfig::paper_defaults();
        assert_eq!(c.bandwidth_shift(), 1);
        assert!((c.expected_max_capacity() - 7_550.0).abs() < 1e-6);
        // Literal §2 scale (shift 0): 100 + 50,000·0.3 = 15,100.
        let literal = SimConfig::builder().bandwidth_shift(0).build().unwrap();
        assert!((literal.expected_max_capacity() - 15_100.0).abs() < 1e-6);
    }

    #[test]
    fn offer_of_applies_shift() {
        let c = SimConfig::paper_defaults();
        assert_eq!(
            c.offer_of(PeerClass::HIGHEST),
            PeerClass::new(2).unwrap().bandwidth()
        );
        let literal = SimConfig::builder().bandwidth_shift(0).build().unwrap();
        assert!(literal.offer_of(PeerClass::HIGHEST).is_full_rate());
        // shift pushing classes past PeerClass::MAX is rejected
        assert!(SimConfig::builder().bandwidth_shift(13).build().is_err());
    }

    #[test]
    fn builder_overrides() {
        let c = SimConfig::builder()
            .seed_suppliers(5)
            .requesting_peers(50)
            .m(4)
            .t_out_minutes(1)
            .t_bkf_minutes(2)
            .e_bkf(3)
            .session_minutes(10)
            .arrival_window_hours(2)
            .duration_hours(4)
            .protocol(Protocol::Ndac)
            .down_probability(0.1)
            .snapshot_secs(60)
            .pattern(ArrivalPattern::Constant)
            .build()
            .unwrap();
        assert_eq!(c.seed_suppliers(), 5);
        assert_eq!(c.m(), 4);
        assert_eq!(c.t_out_secs(), 60);
        assert_eq!(c.t_bkf_secs(), 120);
        assert_eq!(c.e_bkf(), 3);
        assert_eq!(c.session_secs(), 600);
        assert_eq!(c.protocol(), Protocol::Ndac);
        assert_eq!(c.down_probability(), 0.1);
        assert_eq!(c.snapshot_secs(), 60);
        assert_eq!(c.pattern(), &ArrivalPattern::Constant);
    }

    #[test]
    fn validation_errors() {
        assert_eq!(
            SimConfig::builder().class_mix(vec![]).build().unwrap_err(),
            ConfigError::BadClassCount(0)
        );
        assert_eq!(
            SimConfig::builder()
                .class_mix(vec![0.0, 0.0])
                .build()
                .unwrap_err(),
            ConfigError::BadClassMix
        );
        assert_eq!(
            SimConfig::builder()
                .arrival_window_hours(10)
                .duration_hours(5)
                .build()
                .unwrap_err(),
            ConfigError::WindowExceedsDuration
        );
        assert_eq!(
            SimConfig::builder()
                .seed_suppliers(0)
                .requesting_peers(0)
                .build()
                .unwrap_err(),
            ConfigError::EmptySystem
        );
        assert_eq!(
            SimConfig::builder().m(0).build().unwrap_err(),
            ConfigError::ZeroCandidates
        );
        assert_eq!(
            SimConfig::builder().session_minutes(0).build().unwrap_err(),
            ConfigError::ZeroSessionDuration
        );
        // seed class outside the configured classes
        assert!(SimConfig::builder()
            .class_mix(vec![1.0, 1.0])
            .seed_class(PeerClass::new(3).unwrap())
            .build()
            .is_err());
    }

    #[test]
    fn config_error_display() {
        for e in [
            ConfigError::BadClassMix,
            ConfigError::BadClassCount(0),
            ConfigError::WindowExceedsDuration,
            ConfigError::EmptySystem,
            ConfigError::ZeroCandidates,
            ConfigError::ZeroSessionDuration,
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
