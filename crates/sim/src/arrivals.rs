//! First-time request arrival patterns (paper §5.1).
//!
//! The paper simulates four arrival patterns over the first 72 hours and
//! defers their exact specification to a technical report we do not have;
//! the shapes implemented here follow the prose (see DESIGN.md §4):
//!
//! 1. **Constant** arrivals.
//! 2. **Ramp** — gradually increasing, then gradually decreasing.
//! 3. **Initial burst** — bursty arrivals followed by lower, constant
//!    arrivals.
//! 4. **Periodic bursts** — bursts every 12 h with low constant arrivals
//!    between bursts.

use rand::distributions::{Distribution, Poisson};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A piecewise-constant arrival-rate density over `[0, 1)` (normalized
/// time; scaled to the arrival window when sampling).
///
/// # Examples
///
/// ```
/// use p2ps_sim::PiecewiseRate;
///
/// // Twice the base rate in the first tenth of the window.
/// let rate = PiecewiseRate::new(vec![(0.0, 0.1, 2.0), (0.1, 1.0, 1.0)]);
/// assert!((rate.total_mass() - 1.1).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PiecewiseRate {
    /// `(start, end, weight)` pieces covering `[0, 1)`; weights are
    /// relative densities.
    pieces: Vec<(f64, f64, f64)>,
}

impl PiecewiseRate {
    /// Creates a density from `(start, end, weight)` pieces.
    ///
    /// # Panics
    ///
    /// Panics if pieces are empty, out of `[0, 1]`, unordered, overlapping
    /// or carry negative/zero total weight.
    pub fn new(pieces: Vec<(f64, f64, f64)>) -> Self {
        assert!(!pieces.is_empty(), "need at least one piece");
        let mut prev_end = 0.0;
        for &(s, e, w) in &pieces {
            assert!(
                (0.0..=1.0).contains(&s) && (0.0..=1.0).contains(&e) && s < e,
                "piece ({s}, {e}) must lie within [0, 1] and be non-empty"
            );
            assert!(s >= prev_end, "pieces must be ordered and disjoint");
            assert!(w >= 0.0 && w.is_finite(), "weights must be non-negative");
            prev_end = e;
        }
        let rate = PiecewiseRate { pieces };
        assert!(
            rate.total_mass() > 0.0,
            "total arrival mass must be positive"
        );
        rate
    }

    /// Integral of the density over `[0, 1)`.
    pub fn total_mass(&self) -> f64 {
        self.pieces.iter().map(|&(s, e, w)| (e - s) * w).sum()
    }
}

/// Inverse-transform sampling of one normalized arrival time in `[0, 1)`
/// — `PiecewiseRate` is a [`Distribution`] like any vendored one, so the
/// arrival patterns compose with the `rand::distributions` machinery
/// instead of an ad-hoc sampling loop.
impl Distribution<f64> for PiecewiseRate {
    fn sample<R: rand::RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        let target = rng.gen::<f64>() * self.total_mass();
        let mut acc = 0.0;
        for &(s, e, w) in &self.pieces {
            let mass = (e - s) * w;
            if acc + mass >= target {
                if mass == 0.0 {
                    return s;
                }
                return s + (target - acc) / w;
            }
            acc += mass;
        }
        self.pieces.last().map(|&(_, e, _)| e).unwrap_or(1.0)
    }
}

/// The four first-time request arrival patterns of the paper's §5.1.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub enum ArrivalPattern {
    /// Pattern 1: constant arrivals over the whole window.
    Constant,
    /// Pattern 2: gradually increasing, then gradually decreasing arrivals
    /// (triangular density peaking at the middle of the window).
    #[default]
    Ramp,
    /// Pattern 3: a heavy burst in the first twelfth of the window (half
    /// of all arrivals), then low constant arrivals.
    InitialBurst,
    /// Pattern 4: periodic bursts — six 2-hour-per-12-hour bursts carrying
    /// 70 % of arrivals, low constant arrivals between bursts.
    PeriodicBursts,
    /// A caller-supplied density (for ablations beyond the paper).
    Custom(PiecewiseRate),
}

impl ArrivalPattern {
    /// The paper's pattern number (1–4), or `None` for custom densities.
    pub fn paper_number(&self) -> Option<u8> {
        match self {
            ArrivalPattern::Constant => Some(1),
            ArrivalPattern::Ramp => Some(2),
            ArrivalPattern::InitialBurst => Some(3),
            ArrivalPattern::PeriodicBursts => Some(4),
            ArrivalPattern::Custom(_) => None,
        }
    }

    /// The pattern's density over normalized time `[0, 1)`.
    pub fn density(&self) -> PiecewiseRate {
        match self {
            ArrivalPattern::Constant => PiecewiseRate::new(vec![(0.0, 1.0, 1.0)]),
            ArrivalPattern::Ramp => {
                // Staircase triangle: up over the first half, down over the
                // second (8 steps approximate the paper's "gradual" shape).
                let mut pieces = Vec::new();
                let steps = 8;
                for i in 0..steps {
                    let s = i as f64 / steps as f64;
                    let e = (i + 1) as f64 / steps as f64;
                    let mid = (s + e) / 2.0;
                    let w = if mid < 0.5 {
                        mid * 4.0
                    } else {
                        (1.0 - mid) * 4.0
                    };
                    pieces.push((s, e, w));
                }
                PiecewiseRate::new(pieces)
            }
            ArrivalPattern::InitialBurst => PiecewiseRate::new(vec![
                // Half of all arrivals in the first 1/12 of the window.
                (0.0, 1.0 / 12.0, 6.0),
                (1.0 / 12.0, 1.0, 6.0 / 11.0),
            ]),
            ArrivalPattern::PeriodicBursts => {
                // 6 bursts of 2h each within 12h periods of a 72h window:
                // burst occupies the first 1/6 of each period and carries
                // 70% of that period's arrivals.
                let mut pieces = Vec::new();
                let periods = 6;
                for p in 0..periods {
                    let start = p as f64 / periods as f64;
                    let burst_end = start + 1.0 / (periods as f64 * 6.0);
                    let period_end = (p + 1) as f64 / periods as f64;
                    // burst: 0.7 mass over width 1/36 -> weight 25.2
                    pieces.push((start, burst_end, 0.7 * 36.0));
                    // trough: 0.3 mass over width 5/36 -> weight 2.16
                    pieces.push((burst_end, period_end, 0.3 * 36.0 / 5.0));
                }
                PiecewiseRate::new(pieces)
            }
            ArrivalPattern::Custom(rate) => rate.clone(),
        }
    }

    /// Generates `n` arrival times (seconds) within `[0, window_secs)`,
    /// sorted ascending.
    pub fn generate<R: Rng + ?Sized>(&self, n: usize, window_secs: u64, rng: &mut R) -> Vec<u64> {
        let density = self.density();
        let mut times: Vec<u64> = (0..n)
            .map(|_| {
                let x = density.sample(rng);
                ((x * window_secs as f64) as u64).min(window_secs.saturating_sub(1))
            })
            .collect();
        times.sort_unstable();
        times
    }
}

impl std::fmt::Display for ArrivalPattern {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.paper_number() {
            Some(n) => write!(f, "pattern-{n}"),
            None => write!(f, "pattern-custom"),
        }
    }
}

/// A stochastic first-time request arrival process for the
/// capacity-amplification engine.
///
/// Where [`ArrivalPattern`] shapes a fixed population along a density,
/// an `ArrivalProcess` models *how* arrivals occur in time: as a
/// homogeneous Poisson process, or as a flash crowd (a dense burst on
/// top of Poisson background traffic). Both are built on the vendored
/// [`Poisson`] distribution; exactly `n` arrivals are always produced
/// so runs stay comparable across processes.
///
/// # Examples
///
/// ```
/// use p2ps_sim::ArrivalProcess;
/// use rand::{rngs::SmallRng, SeedableRng};
///
/// let mut rng = SmallRng::seed_from_u64(7);
/// let times = ArrivalProcess::default().generate(1_000, 3_600, &mut rng);
/// assert_eq!(times.len(), 1_000);
/// assert!(times.iter().all(|&t| t < 3_600));
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub enum ArrivalProcess {
    /// One of the paper's §5.1 density-shaped patterns.
    Pattern(ArrivalPattern),
    /// A homogeneous Poisson process: the window is cut into
    /// [`ArrivalProcess::POISSON_BUCKETS`] buckets, each receiving a
    /// `Poisson(n / buckets)` count of uniformly placed arrivals.
    #[default]
    Poisson,
    /// A flash crowd: `burst_fraction` of all peers arrive uniformly
    /// within `[burst_start, burst_start + burst_width)` (normalized
    /// window time); the rest arrive as Poisson background over the
    /// whole window.
    FlashCrowd {
        /// Fraction of arrivals belonging to the burst, in `[0, 1]`.
        burst_fraction: f64,
        /// Burst start as a fraction of the window, in `[0, 1)`.
        burst_start: f64,
        /// Burst width as a fraction of the window, in `(0, 1]`.
        burst_width: f64,
    },
}

impl ArrivalProcess {
    /// Number of buckets the Poisson process cuts the window into.
    pub const POISSON_BUCKETS: usize = 256;

    /// The paper-shaped flash crowd used by the amplification
    /// experiments: 90 % of peers arrive within the first 5 % of the
    /// window.
    pub fn flash_crowd() -> Self {
        ArrivalProcess::FlashCrowd {
            burst_fraction: 0.9,
            burst_start: 0.0,
            burst_width: 0.05,
        }
    }

    /// Generates exactly `n` arrival times (seconds) in
    /// `[0, window_secs)`, sorted ascending.
    ///
    /// # Panics
    ///
    /// Panics if `window_secs == 0` with `n > 0`, or if a
    /// [`FlashCrowd`](ArrivalProcess::FlashCrowd) variant carries
    /// fractions outside their documented ranges.
    pub fn generate<R: Rng + ?Sized>(&self, n: usize, window_secs: u64, rng: &mut R) -> Vec<u64> {
        if n == 0 {
            return Vec::new();
        }
        assert!(window_secs > 0, "arrival window must be positive");
        let mut times = match self {
            ArrivalProcess::Pattern(pattern) => return pattern.generate(n, window_secs, rng),
            ArrivalProcess::Poisson => poisson_times(n, 0, window_secs, rng),
            ArrivalProcess::FlashCrowd {
                burst_fraction,
                burst_start,
                burst_width,
            } => {
                assert!(
                    (0.0..=1.0).contains(burst_fraction),
                    "burst_fraction {burst_fraction} outside [0, 1]"
                );
                assert!(
                    (0.0..1.0).contains(burst_start),
                    "burst_start {burst_start} outside [0, 1)"
                );
                assert!(
                    *burst_width > 0.0 && burst_start + burst_width <= 1.0,
                    "burst [{burst_start}, {}) outside the window",
                    burst_start + burst_width
                );
                let in_burst = ((n as f64) * burst_fraction).round() as usize;
                let lo = (burst_start * window_secs as f64) as u64;
                let hi = (((burst_start + burst_width) * window_secs as f64) as u64)
                    .clamp(lo + 1, window_secs);
                let mut times: Vec<u64> = (0..in_burst).map(|_| rng.gen_range(lo..hi)).collect();
                times.extend(poisson_times(n - in_burst, 0, window_secs, rng));
                times
            }
        };
        times.sort_unstable();
        times
    }
}

impl std::fmt::Display for ArrivalProcess {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArrivalProcess::Pattern(p) => write!(f, "{p}"),
            ArrivalProcess::Poisson => write!(f, "poisson"),
            ArrivalProcess::FlashCrowd { .. } => write!(f, "flash-crowd"),
        }
    }
}

/// Exactly `n` arrival times in `[lo, hi)` from a bucketed homogeneous
/// Poisson process: per-bucket counts are `Poisson(n / buckets)` draws,
/// then the total is trimmed/topped up to `n` with uniform deletions and
/// insertions so every caller gets a fixed population size.
fn poisson_times<R: Rng + ?Sized>(n: usize, lo: u64, hi: u64, rng: &mut R) -> Vec<u64> {
    if n == 0 {
        return Vec::new();
    }
    let span = hi - lo;
    let buckets = ArrivalProcess::POISSON_BUCKETS.min(span as usize).max(1);
    let per_bucket = Poisson::new((n as f64 / buckets as f64).max(f64::MIN_POSITIVE));
    let mut times = Vec::with_capacity(n + n / 8);
    for b in 0..buckets as u64 {
        let start = lo + b * span / buckets as u64;
        let end = lo + (b + 1) * span / buckets as u64;
        let count = per_bucket.sample(rng);
        for _ in 0..count {
            times.push(rng.gen_range(start..end.max(start + 1)));
        }
    }
    while times.len() > n {
        let i = rng.gen_range(0..times.len());
        times.swap_remove(i);
    }
    while times.len() < n {
        times.push(rng.gen_range(lo..hi));
    }
    times
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(7)
    }

    #[test]
    fn all_patterns_generate_exactly_n_sorted_in_window() {
        let window = 72 * 3_600;
        for pattern in [
            ArrivalPattern::Constant,
            ArrivalPattern::Ramp,
            ArrivalPattern::InitialBurst,
            ArrivalPattern::PeriodicBursts,
        ] {
            let times = pattern.generate(5_000, window, &mut rng());
            assert_eq!(times.len(), 5_000, "{pattern}");
            assert!(times.windows(2).all(|w| w[0] <= w[1]), "{pattern} sorted");
            assert!(*times.last().unwrap() < window, "{pattern} in window");
        }
    }

    #[test]
    fn constant_pattern_is_roughly_uniform() {
        let window = 72_000;
        let times = ArrivalPattern::Constant.generate(20_000, window, &mut rng());
        let first_half = times.iter().filter(|&&t| t < window / 2).count();
        assert!(
            (9_000..11_000).contains(&first_half),
            "first half got {first_half} of 20000"
        );
    }

    #[test]
    fn ramp_peaks_in_the_middle() {
        let window = 72_000;
        let times = ArrivalPattern::Ramp.generate(30_000, window, &mut rng());
        let third = |lo: u64, hi: u64| times.iter().filter(|&&t| t >= lo && t < hi).count();
        let early = third(0, window / 3);
        let middle = third(window / 3, 2 * window / 3);
        let late = third(2 * window / 3, window);
        assert!(
            middle > early + early / 2,
            "middle {middle} vs early {early}"
        );
        assert!(middle > late + late / 2, "middle {middle} vs late {late}");
    }

    #[test]
    fn initial_burst_frontloads_half() {
        let window = 72_000;
        let times = ArrivalPattern::InitialBurst.generate(20_000, window, &mut rng());
        let in_burst = times.iter().filter(|&&t| t < window / 12).count();
        assert!(
            (9_000..11_000).contains(&in_burst),
            "burst got {in_burst} of 20000"
        );
    }

    #[test]
    fn periodic_bursts_have_six_spikes() {
        let window = 72 * 3_600u64;
        let times = ArrivalPattern::PeriodicBursts.generate(36_000, window, &mut rng());
        // Each 12h period: first 2h must hold ~70% of that period's mass.
        for p in 0..6u64 {
            let start = p * window / 6;
            let burst_end = start + window / 36;
            let period_end = (p + 1) * window / 6;
            let burst = times
                .iter()
                .filter(|&&t| t >= start && t < burst_end)
                .count();
            let whole = times
                .iter()
                .filter(|&&t| t >= start && t < period_end)
                .count();
            let frac = burst as f64 / whole as f64;
            assert!(
                (0.6..0.8).contains(&frac),
                "period {p}: burst fraction {frac}"
            );
        }
    }

    #[test]
    fn custom_density_is_respected() {
        let rate = PiecewiseRate::new(vec![(0.0, 0.5, 0.0), (0.5, 1.0, 1.0)]);
        let times = ArrivalPattern::Custom(rate).generate(1_000, 1_000, &mut rng());
        assert!(times.iter().all(|&t| t >= 500));
    }

    #[test]
    fn paper_numbers() {
        assert_eq!(ArrivalPattern::Constant.paper_number(), Some(1));
        assert_eq!(ArrivalPattern::Ramp.paper_number(), Some(2));
        assert_eq!(ArrivalPattern::InitialBurst.paper_number(), Some(3));
        assert_eq!(ArrivalPattern::PeriodicBursts.paper_number(), Some(4));
        let custom = ArrivalPattern::Custom(PiecewiseRate::new(vec![(0.0, 1.0, 1.0)]));
        assert_eq!(custom.paper_number(), None);
        assert_eq!(format!("{custom}"), "pattern-custom");
        assert_eq!(format!("{}", ArrivalPattern::Ramp), "pattern-2");
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = ArrivalPattern::Ramp.generate(100, 1_000, &mut SmallRng::seed_from_u64(1));
        let b = ArrivalPattern::Ramp.generate(100, 1_000, &mut SmallRng::seed_from_u64(1));
        let c = ArrivalPattern::Ramp.generate(100, 1_000, &mut SmallRng::seed_from_u64(2));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    #[should_panic(expected = "ordered and disjoint")]
    fn overlapping_pieces_panic() {
        let _ = PiecewiseRate::new(vec![(0.0, 0.6, 1.0), (0.5, 1.0, 1.0)]);
    }

    #[test]
    #[should_panic(expected = "mass must be positive")]
    fn zero_mass_panics() {
        let _ = PiecewiseRate::new(vec![(0.0, 1.0, 0.0)]);
    }

    #[test]
    fn zero_arrivals_is_fine() {
        let times = ArrivalPattern::Constant.generate(0, 1_000, &mut rng());
        assert!(times.is_empty());
    }

    #[test]
    fn poisson_process_is_exact_n_and_roughly_uniform() {
        let window = 72 * 3_600;
        let times = ArrivalProcess::Poisson.generate(20_000, window, &mut rng());
        assert_eq!(times.len(), 20_000);
        assert!(times.windows(2).all(|w| w[0] <= w[1]));
        assert!(*times.last().unwrap() < window);
        let first_half = times.iter().filter(|&&t| t < window / 2).count();
        assert!(
            (9_000..11_000).contains(&first_half),
            "first half got {first_half}"
        );
    }

    #[test]
    fn poisson_bucket_counts_actually_vary() {
        // A fixed-rate generator would put exactly n/buckets arrivals in
        // each bucket; a Poisson process must not.
        let window = 256_000u64;
        let n = 25_600;
        let times = ArrivalProcess::Poisson.generate(n, window, &mut rng());
        let bucket_width = window / ArrivalProcess::POISSON_BUCKETS as u64;
        let mut counts = vec![0usize; ArrivalProcess::POISSON_BUCKETS];
        let last = counts.len() - 1;
        for &t in &times {
            counts[((t / bucket_width) as usize).min(last)] += 1;
        }
        let distinct: std::collections::HashSet<usize> = counts.iter().copied().collect();
        assert!(distinct.len() > 5, "bucket counts {distinct:?} too regular");
    }

    #[test]
    fn flash_crowd_frontloads_the_burst() {
        let window = 72 * 3_600;
        let fc = ArrivalProcess::flash_crowd();
        let times = fc.generate(10_000, window, &mut rng());
        assert_eq!(times.len(), 10_000);
        let burst_end = window / 20; // first 5 % of the window
        let in_burst = times.iter().filter(|&&t| t < burst_end).count();
        assert!(
            in_burst >= 9_000,
            "only {in_burst} of 10000 inside the burst"
        );
    }

    #[test]
    fn process_generation_is_deterministic_per_seed() {
        for process in [
            ArrivalProcess::Poisson,
            ArrivalProcess::flash_crowd(),
            ArrivalProcess::Pattern(ArrivalPattern::Ramp),
        ] {
            let a = process.generate(500, 7_200, &mut SmallRng::seed_from_u64(3));
            let b = process.generate(500, 7_200, &mut SmallRng::seed_from_u64(3));
            let c = process.generate(500, 7_200, &mut SmallRng::seed_from_u64(4));
            assert_eq!(a, b, "{process}");
            assert_ne!(a, c, "{process}");
        }
    }

    #[test]
    fn process_display_names() {
        assert_eq!(format!("{}", ArrivalProcess::Poisson), "poisson");
        assert_eq!(format!("{}", ArrivalProcess::flash_crowd()), "flash-crowd");
        assert_eq!(
            format!("{}", ArrivalProcess::Pattern(ArrivalPattern::Constant)),
            "pattern-1"
        );
    }

    #[test]
    #[should_panic(expected = "outside the window")]
    fn flash_crowd_burst_outside_window_panics() {
        let fc = ArrivalProcess::FlashCrowd {
            burst_fraction: 0.5,
            burst_start: 0.9,
            burst_width: 0.5,
        };
        let _ = fc.generate(10, 1_000, &mut rng());
    }
}
