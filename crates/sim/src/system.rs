//! The simulation engine.

use std::cell::RefCell;
use std::collections::{BTreeMap, HashSet};
use std::rc::Rc;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use p2ps_core::admission::{
    attempt_admission, BackoffPolicy, Candidate, ProbeOutcome, RequestDecision, RequesterState,
    SupplierConfig, SupplierState,
};
use p2ps_core::{PeerClass, PeerId};
use p2ps_policy::{SessionContext, SharedPolicy};

use crate::event::{EventKind, EventQueue};
use crate::metrics::Collector;
use crate::{SimConfig, SimReport};

/// Lifecycle phase of a peer (paper §2(1): requesting → streaming →
/// supplying).
#[derive(Debug)]
enum Phase {
    /// Waiting to be admitted (possibly backing off between retries).
    Waiting,
    /// Streaming from the given suppliers.
    Streaming { suppliers: Vec<PeerId> },
    /// Serving as a supplying peer.
    Supplying,
    /// Left the system (churn extension).
    Departed,
}

#[derive(Debug)]
struct PeerRec {
    class: PeerClass,
    requester: RequesterState,
    phase: Phase,
}

/// A probed candidate: its supplier state is temporarily checked out of
/// the supplier table for the duration of one admission attempt.
struct SimCandidate {
    id: PeerId,
    now: u64,
    down: bool,
    offer: p2ps_core::Bandwidth,
    state: SupplierState,
    rng: Rc<RefCell<SmallRng>>,
}

impl Candidate for SimCandidate {
    fn class(&self) -> PeerClass {
        self.state.class()
    }

    fn offer(&self) -> p2ps_core::Bandwidth {
        self.offer
    }

    fn request(&mut self, from: PeerClass) -> RequestDecision {
        if self.down {
            // A down candidate never responds; the requester treats it
            // like a refusal (it cannot secure bandwidth from it and must
            // not leave a reminder with it).
            return RequestDecision::Refused;
        }
        self.state
            .handle_request(self.now, from, &mut *self.rng.borrow_mut())
    }

    fn leave_reminder(&mut self, from: PeerClass) {
        self.state.leave_reminder(from);
    }

    fn release(&mut self) {
        // Grants carry no reservation in the simulator; nothing to undo.
    }
}

/// A deterministic discrete-event simulation of the paper's §5 system.
///
/// Construction seeds the RNG, creates the peer population and schedules
/// every first-time request; [`run`](Simulation::run) then processes
/// events until the horizon and returns the collected [`SimReport`].
#[derive(Debug)]
pub struct Simulation {
    config: SimConfig,
    rng: SmallRng,
    queue: EventQueue,
    peers: Vec<PeerRec>,
    /// Supplier states, keyed by raw peer id. A `BTreeMap` keeps every
    /// iteration order deterministic across runs.
    suppliers: BTreeMap<u64, SupplierState>,
    /// Sampling pool of all supplier ids (busy ones included — they can
    /// receive reminders).
    pool: Vec<PeerId>,
    /// Position of each pool entry, for O(1) swap-removal under churn.
    pool_index: std::collections::HashMap<u64, usize>,
    /// Suppliers whose departure fired while they were mid-session; they
    /// leave as soon as the session ends.
    pending_departures: std::collections::HashSet<u64>,
    metrics: Collector,
    supplier_config: SupplierConfig,
    /// Computes each admitted session's buffering delay from the granted
    /// suppliers' offered bandwidths. The default, `Otsp2p`, reproduces
    /// the paper's Theorem-1 `n·δt` figure exactly.
    policy: SharedPolicy,
}

impl Simulation {
    /// Builds the initial system state for `config`, deterministically
    /// derived from `seed`, streaming with the paper's `OTSp2p`
    /// assignment policy.
    pub fn new(config: SimConfig, seed: u64) -> Self {
        Self::with_policy(config, seed, SharedPolicy::default())
    }

    /// Like [`new`](Self::new) but sessions compute their buffering
    /// delay through the given [`SelectionPolicy`](p2ps_policy::SelectionPolicy) —
    /// the Fig.-6 delay series then measures that policy instead of the
    /// hard-wired §3 optimum.
    pub fn with_policy(config: SimConfig, seed: u64, policy: SharedPolicy) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed);
        let supplier_config =
            SupplierConfig::new(config.num_classes(), config.t_out_secs(), config.protocol())
                .expect("SimConfig validated the class count")
                .reminders(config.reminders_enabled())
                .session_relax(config.session_relax_enabled());
        let backoff = BackoffPolicy::new(config.t_bkf_secs(), config.e_bkf());

        let mut peers = Vec::with_capacity(
            config.seed_suppliers() as usize + config.requesting_peers() as usize,
        );
        let mut suppliers = BTreeMap::new();
        let mut pool = Vec::new();

        let mut pool_index = std::collections::HashMap::new();
        let mut queue = EventQueue::new();
        for i in 0..config.seed_suppliers() {
            let id = PeerId::new(i as u64);
            peers.push(PeerRec {
                class: config.seed_class(),
                requester: RequesterState::new(config.seed_class(), backoff),
                phase: Phase::Supplying,
            });
            suppliers.insert(
                id.get(),
                SupplierState::new(config.seed_class(), supplier_config, 0)
                    .expect("seed class validated"),
            );
            pool_index.insert(id.get(), pool.len());
            pool.push(id);
            if let Some(lifetime) = config.supplier_lifetime_secs() {
                queue.schedule(lifetime, EventKind::Departure(id));
            }
        }

        // Class mix: cumulative weights for sampling requester classes.
        let total: f64 = config.class_mix().iter().sum();
        let cumulative: Vec<f64> = config
            .class_mix()
            .iter()
            .scan(0.0, |acc, w| {
                *acc += w / total;
                Some(*acc)
            })
            .collect();

        let arrivals = config.pattern().generate(
            config.requesting_peers() as usize,
            config.arrival_window_secs().max(1),
            &mut rng,
        );
        for (i, &at) in arrivals.iter().enumerate() {
            let id = PeerId::new(config.seed_suppliers() as u64 + i as u64);
            let x: f64 = rng.gen();
            let class_idx = cumulative.partition_point(|&c| c < x);
            let class = PeerClass::new((class_idx as u8 + 1).min(config.num_classes()))
                .expect("class index within configured range");
            peers.push(PeerRec {
                class,
                requester: RequesterState::new(class, backoff),
                phase: Phase::Waiting,
            });
            queue.schedule(at, EventKind::FirstRequest(id));
        }

        let initial_capacity = config.seed_suppliers() as f64
            * config.offer_of(config.seed_class()).fraction_of_rate();
        let metrics = Collector::new(
            config.num_classes(),
            initial_capacity,
            config.favored_window_secs(),
        );

        Simulation {
            config,
            rng,
            queue,
            peers,
            suppliers,
            pool,
            pool_index,
            pending_departures: std::collections::HashSet::new(),
            metrics,
            supplier_config,
            policy,
        }
    }

    /// The configuration being simulated.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Runs the simulation to its horizon and returns the report.
    pub fn run(mut self) -> SimReport {
        let duration = self.config.duration_secs();
        let snap = self.config.snapshot_secs().max(1);
        let mut next_snap = 0u64;

        while let Some((t, kind)) = self.queue.pop() {
            if t > duration {
                break;
            }
            while next_snap <= t {
                self.take_snapshot(next_snap);
                next_snap += snap;
            }
            match kind {
                EventKind::FirstRequest(peer) => {
                    let class_idx = (self.peers[peer.get() as usize].class.get() - 1) as usize;
                    self.metrics.record_first_request(class_idx);
                    self.peers[peer.get() as usize].requester.record_request(t);
                    self.attempt(t, peer);
                }
                EventKind::Retry(peer) => {
                    self.attempt(t, peer);
                }
                EventKind::SessionEnd { requester } => {
                    self.finish_session(t, requester);
                }
                EventKind::Departure(peer) => {
                    self.handle_departure(t, peer);
                }
            }
        }
        while next_snap <= duration {
            self.take_snapshot(next_snap);
            next_snap += snap;
        }

        SimReport::from_collector(self.config, self.metrics)
    }

    /// One admission attempt of `peer` at time `t` (paper §4.2).
    fn attempt(&mut self, t: u64, peer: PeerId) {
        self.metrics.attempts += 1;
        let class = self.peers[peer.get() as usize].class;

        let candidate_ids = self.sample_candidates(self.config.m());
        let down_p = self.config.down_probability();
        let shared_rng = Rc::new(RefCell::new(std::mem::replace(
            &mut self.rng,
            SmallRng::seed_from_u64(0),
        )));
        let mut candidates: Vec<SimCandidate> = candidate_ids
            .iter()
            .map(|&id| {
                let state = self
                    .suppliers
                    .remove(&id.get())
                    .expect("pool entries are suppliers");
                let down = down_p > 0.0 && shared_rng.borrow_mut().gen::<f64>() < down_p;
                SimCandidate {
                    id,
                    now: t,
                    down,
                    offer: self.config.offer_of(state.class()),
                    state,
                    rng: Rc::clone(&shared_rng),
                }
            })
            .collect();

        let outcome = attempt_admission(class, &mut candidates);

        match &outcome {
            ProbeOutcome::Admitted { granted } => {
                let supplier_ids: Vec<PeerId> = granted.iter().map(|&i| candidates[i].id).collect();
                for &i in granted {
                    candidates[i].state.begin_session(t);
                }
                // The session's buffering delay under the configured
                // selection policy: the granted suppliers' *offered*
                // bandwidth classes (protocol class + shift) feed the
                // segment→supplier plan, whose minimum feasible delay is
                // the Fig.-6 sample. OTSp2p yields Theorem 1's n·δt.
                let offered: Vec<PeerClass> = granted
                    .iter()
                    .map(|&i| self.config.offered_class(candidates[i].state.class()))
                    .collect();
                let horizon = offered
                    .iter()
                    .map(|c| u64::from(c.slots_per_segment()))
                    .max()
                    .unwrap_or(1)
                    * 4;
                let ctx = SessionContext::full(&offered, horizon).with_seed(peer.get());
                let delay_slots = self
                    .policy
                    .plan(&ctx)
                    .map(|p| p.min_delay_slots(&ctx))
                    .unwrap_or(offered.len() as u64);
                let rec = &mut self.peers[peer.get() as usize];
                let class_idx = (rec.class.get() - 1) as usize;
                let rejections = rec.requester.rejections();
                let waiting = rec.requester.waiting_time(t);
                self.metrics
                    .record_admission(class_idx, rejections, delay_slots, waiting);
                rec.phase = Phase::Streaming {
                    suppliers: supplier_ids,
                };
                self.queue.schedule(
                    t + self.config.session_secs(),
                    EventKind::SessionEnd { requester: peer },
                );
            }
            ProbeOutcome::Rejected { .. } => {
                let delay = self.peers[peer.get() as usize].requester.record_rejection();
                let retry_at = t.saturating_add(delay);
                if retry_at <= self.config.duration_secs() {
                    self.queue.schedule(retry_at, EventKind::Retry(peer));
                }
            }
        }

        for c in candidates {
            self.suppliers.insert(c.id.get(), c.state);
        }
        self.rng = Rc::try_unwrap(shared_rng)
            .expect("all candidate rng handles dropped")
            .into_inner();
    }

    /// Session completion: suppliers run the §4.1(c) update and the
    /// requester becomes a new supplying peer.
    fn finish_session(&mut self, t: u64, requester: PeerId) {
        let rec = &mut self.peers[requester.get() as usize];
        let class = rec.class;
        let suppliers = match std::mem::replace(&mut rec.phase, Phase::Supplying) {
            Phase::Streaming { suppliers } => suppliers,
            other => panic!("session end for peer in phase {other:?}"),
        };
        for id in suppliers {
            self.suppliers
                .get_mut(&id.get())
                .expect("session suppliers exist")
                .end_session(t);
            if self.pending_departures.remove(&id.get()) {
                self.remove_supplier(t, id);
            }
        }
        self.suppliers.insert(
            requester.get(),
            SupplierState::new(class, self.supplier_config, t).expect("requester class validated"),
        );
        self.pool_index.insert(requester.get(), self.pool.len());
        self.pool.push(requester);
        self.metrics
            .record_capacity_gain(t, self.config.offer_of(class).fraction_of_rate());
        self.metrics.sessions_completed += 1;
        if let Some(lifetime) = self.config.supplier_lifetime_secs() {
            self.queue
                .schedule(t + lifetime, EventKind::Departure(requester));
        }
    }

    /// Churn: a supplier's lifetime expired. Busy suppliers finish their
    /// current session first (deferred removal).
    fn handle_departure(&mut self, t: u64, peer: PeerId) {
        let Some(state) = self.suppliers.get(&peer.get()) else {
            return; // already gone
        };
        if state.is_busy() {
            self.pending_departures.insert(peer.get());
        } else {
            self.remove_supplier(t, peer);
        }
    }

    /// Removes a supplier from the pool, table and capacity accounting.
    fn remove_supplier(&mut self, t: u64, peer: PeerId) {
        if self.suppliers.remove(&peer.get()).is_none() {
            return;
        }
        let idx = self
            .pool_index
            .remove(&peer.get())
            .expect("pool and table stay in sync");
        let last = self.pool.len() - 1;
        self.pool.swap(idx, last);
        self.pool.pop();
        if idx < self.pool.len() {
            self.pool_index.insert(self.pool[idx].get(), idx);
        }
        let class = self.peers[peer.get() as usize].class;
        self.peers[peer.get() as usize].phase = Phase::Departed;
        self.metrics
            .record_capacity_gain(t, -self.config.offer_of(class).fraction_of_rate());
    }

    /// Uniformly samples up to `m` distinct supplier ids from the pool.
    fn sample_candidates(&mut self, m: usize) -> Vec<PeerId> {
        let n = self.pool.len();
        if n <= m {
            return self.pool.clone();
        }
        let mut chosen = HashSet::with_capacity(m);
        let mut out = Vec::with_capacity(m);
        while out.len() < m {
            let idx = self.rng.gen_range(0..n);
            if chosen.insert(idx) {
                out.push(self.pool[idx]);
            }
        }
        out
    }

    /// Hourly bookkeeping: Fig.-5/6/9 cumulative snapshots plus the Fig.-7
    /// favored-class sample across all suppliers.
    fn take_snapshot(&mut self, t: u64) {
        self.metrics.snapshot(t);
        for state in self.suppliers.values_mut() {
            let class_idx = (state.class().get() - 1) as usize;
            let lowest = state.lowest_favored_at(t).get();
            self.metrics.record_favored(t, class_idx, lowest);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ArrivalPattern;
    use p2ps_core::admission::Protocol;

    fn small_config(protocol: Protocol) -> SimConfig {
        SimConfig::builder()
            .seed_suppliers(4)
            .requesting_peers(200)
            .arrival_window_hours(12)
            .duration_hours(30)
            .session_minutes(30)
            .pattern(ArrivalPattern::Constant)
            .protocol(protocol)
            .build()
            .unwrap()
    }

    #[test]
    fn capacity_grows_from_seeds() {
        let report = Simulation::new(small_config(Protocol::Dac), 1).run();
        assert!(
            report.final_capacity() > 4.0,
            "capacity {} did not grow past the seeds",
            report.final_capacity()
        );
        // capacity is monotone non-decreasing (no departures)
        let vals: Vec<f64> = report.capacity().iter().map(|(_, v)| v).collect();
        assert!(vals.windows(2).all(|w| w[1] >= w[0]));
    }

    #[test]
    fn runs_are_deterministic_per_seed() {
        let a = Simulation::new(small_config(Protocol::Dac), 99).run();
        let b = Simulation::new(small_config(Protocol::Dac), 99).run();
        assert_eq!(a.final_capacity(), b.final_capacity());
        assert_eq!(a.attempts(), b.attempts());
        assert_eq!(a.admitted(), b.admitted());
        assert_eq!(
            a.capacity().iter().collect::<Vec<_>>(),
            b.capacity().iter().collect::<Vec<_>>()
        );
        let c = Simulation::new(small_config(Protocol::Dac), 100).run();
        assert_ne!(a.attempts(), c.attempts());
    }

    #[test]
    fn most_peers_eventually_admitted() {
        let report = Simulation::new(small_config(Protocol::Dac), 7).run();
        let admitted: u64 = report.admitted().iter().sum();
        let requested: u64 = report.first_requests().iter().sum();
        assert_eq!(requested, 200);
        assert!(
            admitted as f64 >= 0.9 * requested as f64,
            "only {admitted}/{requested} admitted"
        );
        assert_eq!(report.sessions_completed(), admitted);
    }

    #[test]
    fn ndac_also_converges() {
        let report = Simulation::new(small_config(Protocol::Ndac), 7).run();
        let admitted: u64 = report.admitted().iter().sum();
        assert!(admitted > 150, "NDAC admitted only {admitted}");
    }

    #[test]
    fn dac_beats_ndac_on_early_capacity() {
        // The paper's central claim (Fig. 4): DACp2p amplifies capacity
        // faster. Compare capacity midway through the run.
        let dac = Simulation::new(small_config(Protocol::Dac), 5).run();
        let ndac = Simulation::new(small_config(Protocol::Ndac), 5).run();
        let mid = 10.0;
        let dac_mid = dac.capacity().value_at(mid).unwrap();
        let ndac_mid = ndac.capacity().value_at(mid).unwrap();
        assert!(
            dac_mid >= ndac_mid,
            "DAC {dac_mid} behind NDAC {ndac_mid} at {mid}h"
        );
    }

    #[test]
    fn higher_classes_see_fewer_rejections_under_dac() {
        let cfg = SimConfig::builder()
            .seed_suppliers(4)
            .requesting_peers(600)
            .arrival_window_hours(12)
            .duration_hours(36)
            .session_minutes(30)
            .pattern(ArrivalPattern::Constant)
            .protocol(Protocol::Dac)
            .build()
            .unwrap();
        let report = Simulation::new(cfg, 3).run();
        let r1 = report.avg_rejections(1).unwrap();
        let r4 = report.avg_rejections(4).unwrap();
        assert!(
            r1 <= r4,
            "class 1 averaged {r1} rejections vs class 4's {r4}"
        );
    }

    #[test]
    fn buffering_delay_is_at_least_one_slot() {
        let report = Simulation::new(small_config(Protocol::Dac), 11).run();
        for k in 1..=4 {
            if let Some(d) = report.avg_delay_slots(k) {
                assert!(d >= 1.0, "class {k} delay {d}");
                assert!(d <= 8.0, "class {k} delay {d} exceeds 8 suppliers");
            }
        }
    }

    #[test]
    fn down_probability_slows_admission() {
        let mut builder = SimConfig::builder();
        builder
            .seed_suppliers(4)
            .requesting_peers(200)
            .arrival_window_hours(12)
            .duration_hours(20)
            .session_minutes(30)
            .pattern(ArrivalPattern::Constant);
        let healthy = Simulation::new(builder.build().unwrap(), 2).run();
        let flaky = Simulation::new(builder.down_probability(0.8).build().unwrap(), 2).run();
        assert!(
            flaky.final_overall_admission_rate() < healthy.final_overall_admission_rate(),
            "80% down candidates should hurt admission"
        );
    }

    #[test]
    fn snapshots_cover_the_whole_horizon() {
        let report = Simulation::new(small_config(Protocol::Dac), 1).run();
        let (t0, t_end) = report.capacity().time_range().unwrap();
        assert_eq!(t0, 0.0);
        assert_eq!(t_end, 30.0);
        assert_eq!(report.capacity().len(), 31);
    }

    #[test]
    fn favored_series_present_for_dac() {
        let report = Simulation::new(small_config(Protocol::Dac), 1).run();
        // Seeds are class 1; their favored series must have samples.
        assert!(!report.lowest_favored().class(1).is_empty());
    }

    #[test]
    fn zero_requesters_is_a_quiet_run() {
        let cfg = SimConfig::builder()
            .seed_suppliers(3)
            .requesting_peers(0)
            .arrival_window_hours(1)
            .duration_hours(2)
            .build()
            .unwrap();
        let report = Simulation::new(cfg, 1).run();
        // 3 class-1 seeds at the evaluation scale offer R0/2 each.
        assert_eq!(report.final_capacity(), 1.5);
        assert_eq!(report.attempts(), 0);
        assert_eq!(report.final_overall_admission_rate(), 0.0);
    }

    #[test]
    fn no_seeds_means_nobody_admitted() {
        let cfg = SimConfig::builder()
            .seed_suppliers(0)
            .requesting_peers(50)
            .arrival_window_hours(2)
            .duration_hours(4)
            .pattern(ArrivalPattern::Constant)
            .build()
            .unwrap();
        let report = Simulation::new(cfg, 1).run();
        // With an empty pool nobody can ever be admitted...
        assert_eq!(report.admitted().iter().sum::<u64>(), 0);
        // ...and capacity stays at zero.
        assert_eq!(report.final_capacity(), 0.0);
    }

    #[test]
    fn churn_departures_shrink_capacity() {
        let cfg = SimConfig::builder()
            .seed_suppliers(6)
            .requesting_peers(0)
            .arrival_window_hours(1)
            .duration_hours(10)
            .supplier_lifetime_hours(2)
            .build()
            .unwrap();
        let report = Simulation::new(cfg, 1).run();
        // All six idle seeds depart at hour 2; capacity drops to zero.
        assert_eq!(report.final_capacity(), 0.0);
        assert_eq!(report.capacity().value_at(1.0), Some(3.0));
        assert_eq!(report.capacity().value_at(3.0), Some(0.0));
    }

    #[test]
    fn churn_system_still_functions_with_replenishment() {
        let cfg = SimConfig::builder()
            .seed_suppliers(8)
            .requesting_peers(400)
            .arrival_window_hours(12)
            .duration_hours(30)
            .session_minutes(30)
            .supplier_lifetime_hours(6)
            .pattern(ArrivalPattern::Constant)
            .build()
            .unwrap();
        let report = Simulation::new(cfg, 3).run();
        let admitted: u64 = report.admitted().iter().sum();
        assert!(admitted > 100, "churned system admitted only {admitted}");
        // Everyone alive at the end has had their lifetime bounded, so
        // capacity must sit well below the no-churn maximum.
        assert!(report.final_capacity() < report.config().expected_max_capacity() / 2.0);
    }

    #[test]
    fn busy_suppliers_depart_only_after_their_session() {
        // Two seeds, lifetime shorter than a session: the departure fires
        // mid-session and must be deferred, so the session still
        // completes and the requester still becomes a supplier. A single
        // class (mix = [1.0]) makes the class-1 request always granted.
        let cfg = SimConfig::builder()
            .seed_suppliers(2) // class-1 at shift 1 offers R0/2 each: both serve
            .requesting_peers(1)
            .class_mix(vec![1.0])
            .arrival_window_hours(1)
            .duration_hours(4)
            .session_minutes(90)
            .supplier_lifetime_hours(1)
            .pattern(ArrivalPattern::Constant)
            .build()
            .unwrap();
        let report = Simulation::new(cfg, 5).run();
        assert_eq!(report.sessions_completed(), 1);
        // Seeds departed after the session; the one new supplier remains
        // until its own lifetime expires.
        assert_eq!(report.final_capacity(), 0.0);
    }

    #[test]
    fn peer_id_space_is_seeds_then_requesters() {
        let sim = Simulation::new(small_config(Protocol::Dac), 1);
        assert_eq!(sim.peers.len(), 204);
        assert_eq!(sim.config().seed_suppliers(), 4);
        assert!(matches!(sim.peers[0].phase, Phase::Supplying));
        assert!(matches!(sim.peers[4].phase, Phase::Waiting));
    }
}
