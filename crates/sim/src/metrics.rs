//! Metric collection during a simulation run.

use p2ps_metrics::{Reservoir, StepSeries, TimeSeries, WindowedAverage};

use crate::HOUR;

/// One [`TimeSeries`] per peer class (index 0 = class 1), used for every
/// per-class figure in the paper.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassSeries {
    series: Vec<TimeSeries>,
}

impl ClassSeries {
    pub(crate) fn new(prefix: &str, num_classes: u8) -> Self {
        ClassSeries {
            series: (1..=num_classes)
                .map(|k| TimeSeries::new(format!("{prefix}-class-{k}")))
                .collect(),
        }
    }

    pub(crate) fn from_series(series: Vec<TimeSeries>) -> Self {
        ClassSeries { series }
    }

    /// Number of classes covered.
    pub fn num_classes(&self) -> u8 {
        self.series.len() as u8
    }

    /// The series of class `k` (1-based).
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero or exceeds the class count.
    pub fn class(&self, k: u8) -> &TimeSeries {
        &self.series[(k - 1) as usize]
    }

    /// Iterates over `(class_number, series)`.
    pub fn iter(&self) -> impl Iterator<Item = (u8, &TimeSeries)> + '_ {
        self.series
            .iter()
            .enumerate()
            .map(|(i, s)| (i as u8 + 1, s))
    }

    pub(crate) fn push(&mut self, k: u8, t: f64, v: f64) {
        self.series[(k - 1) as usize].push(t, v);
    }
}

/// Internal collector; converted into a `SimReport` when the run ends.
#[derive(Debug)]
pub(crate) struct Collector {
    num_classes: u8,
    /// Total system capacity in sessions, stepped at every change (hours).
    pub capacity: StepSeries,
    /// Cumulative counters, indexed by class-1.
    pub first_requests: Vec<u64>,
    pub admitted: Vec<u64>,
    pub rejections_of_admitted: Vec<u64>,
    pub delay_slots_sum: Vec<u64>,
    pub waiting_secs_sum: Vec<u64>,
    pub attempts: u64,
    pub sessions_completed: u64,
    /// Snapshots (hours) of the cumulative per-class admission rate (%).
    pub admission_rate: ClassSeries,
    /// Snapshot of the overall cumulative admission rate (%).
    pub overall_admission_rate: TimeSeries,
    /// Snapshots of the cumulative average buffering delay (units of δt).
    pub buffering_delay: ClassSeries,
    /// Fig. 7: lowest favored class, averaged per supplier class over
    /// fixed windows.
    pub favored: Vec<WindowedAverage>,
    /// Per-class waiting-time samples (seconds) for quantile reporting.
    pub waiting: Vec<Reservoir>,
}

impl Collector {
    pub(crate) fn new(num_classes: u8, initial_capacity: f64, favored_window_secs: u64) -> Self {
        let n = num_classes as usize;
        Collector {
            num_classes,
            capacity: StepSeries::new("capacity", initial_capacity),
            first_requests: vec![0; n],
            admitted: vec![0; n],
            rejections_of_admitted: vec![0; n],
            delay_slots_sum: vec![0; n],
            waiting_secs_sum: vec![0; n],
            attempts: 0,
            sessions_completed: 0,
            admission_rate: ClassSeries::new("admission-rate", num_classes),
            overall_admission_rate: TimeSeries::new("overall-admission-rate"),
            buffering_delay: ClassSeries::new("buffering-delay", num_classes),
            favored: (1..=num_classes)
                .map(|k| {
                    WindowedAverage::new(
                        format!("lowest-favored-by-class-{k}"),
                        (favored_window_secs as f64) / HOUR as f64,
                    )
                })
                .collect(),
            waiting: (0..num_classes)
                .map(|k| Reservoir::new(4_096, 0xaaaa + k as u64))
                .collect(),
        }
    }

    pub(crate) fn record_first_request(&mut self, class_idx: usize) {
        self.first_requests[class_idx] += 1;
    }

    pub(crate) fn record_admission(
        &mut self,
        class_idx: usize,
        rejections: u32,
        delay_slots: u64,
        waiting_secs: u64,
    ) {
        self.admitted[class_idx] += 1;
        self.rejections_of_admitted[class_idx] += rejections as u64;
        self.delay_slots_sum[class_idx] += delay_slots;
        self.waiting_secs_sum[class_idx] += waiting_secs;
        self.waiting[class_idx].record(waiting_secs as f64);
    }

    pub(crate) fn record_capacity_gain(&mut self, t_secs: u64, sessions_delta: f64) {
        self.capacity
            .add(t_secs as f64 / HOUR as f64, sessions_delta);
    }

    pub(crate) fn record_favored(&mut self, t_secs: u64, supplier_class_idx: usize, lowest: u8) {
        self.favored[supplier_class_idx].record(t_secs as f64 / HOUR as f64, lowest as f64);
    }

    /// Takes the cumulative-metric snapshots at `t_secs`.
    pub(crate) fn snapshot(&mut self, t_secs: u64) {
        let t = t_secs as f64 / HOUR as f64;
        let mut req_total = 0u64;
        let mut adm_total = 0u64;
        for k in 1..=self.num_classes {
            let i = (k - 1) as usize;
            req_total += self.first_requests[i];
            adm_total += self.admitted[i];
            if self.first_requests[i] > 0 {
                let rate = 100.0 * self.admitted[i] as f64 / self.first_requests[i] as f64;
                self.admission_rate.push(k, t, rate);
            }
            if self.admitted[i] > 0 {
                let avg = self.delay_slots_sum[i] as f64 / self.admitted[i] as f64;
                self.buffering_delay.push(k, t, avg);
            }
        }
        if req_total > 0 {
            self.overall_admission_rate
                .push(t, 100.0 * adm_total as f64 / req_total as f64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_series_access() {
        let mut cs = ClassSeries::new("x", 4);
        assert_eq!(cs.num_classes(), 4);
        cs.push(2, 1.0, 5.0);
        assert_eq!(cs.class(2).last(), Some((1.0, 5.0)));
        assert!(cs.class(1).is_empty());
        let names: Vec<&str> = cs.iter().map(|(_, s)| s.name()).collect();
        assert_eq!(
            names,
            vec!["x-class-1", "x-class-2", "x-class-3", "x-class-4"]
        );
    }

    #[test]
    fn collector_counters_and_snapshots() {
        let mut c = Collector::new(4, 100.0, 3 * HOUR);
        c.record_first_request(0);
        c.record_first_request(0);
        c.record_admission(0, 3, 4, 600);
        c.snapshot(HOUR);
        assert_eq!(c.admission_rate.class(1).last(), Some((1.0, 50.0)));
        assert_eq!(c.buffering_delay.class(1).last(), Some((1.0, 4.0)));
        assert_eq!(c.overall_admission_rate.last(), Some((1.0, 50.0)));
        // classes with no requests produce no points
        assert!(c.admission_rate.class(2).is_empty());
    }

    #[test]
    fn capacity_steps_in_hours() {
        let mut c = Collector::new(4, 100.0, 3 * HOUR);
        c.record_capacity_gain(2 * HOUR, 0.5);
        assert_eq!(c.capacity.current(), 100.5);
        assert_eq!(c.capacity.value_at(1.0), 100.0);
        assert_eq!(c.capacity.value_at(2.0), 100.5);
    }

    #[test]
    fn favored_window_averages() {
        let mut c = Collector::new(2, 0.0, 3 * HOUR);
        c.record_favored(0, 0, 1);
        c.record_favored(HOUR, 0, 3);
        let series = c.favored[0].to_series();
        // single 3h window, average (1+3)/2 = 2
        assert_eq!(series.iter().next(), Some((1.5, 2.0)));
    }
}
