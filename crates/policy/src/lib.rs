//! Pluggable peer-selection policies for multi-supplier streaming.
//!
//! The paper's §3 contribution — the `OTSp2p` media data assignment — is
//! one *policy* for deciding which supplying peer transmits which media
//! segments. The literature on P2P on-demand streaming (see PAPERS.md:
//! *Analyzing Peer Selection Policies for BitTorrent Multimedia On-Demand
//! Streaming Systems* and *A Review on P2P Video Streaming*) evaluates
//! that decision against BitTorrent-style alternatives — rarest-first,
//! sequential windows, random assignment — under VoD workloads with
//! seeks, departures and partially available files.
//!
//! This crate turns the decision into an extension point:
//!
//! * [`SelectionPolicy`] — candidate suppliers and their per-supplier
//!   state go in ([`SessionContext`]), a segment → supplier assignment
//!   comes out ([`PolicyPlan`]), with a mid-stream re-decision hook
//!   ([`SelectionPolicy::replan`]) for supplier departure and seeks.
//! * [`Otsp2p`] — the paper's optimal assignment behind the trait
//!   (delegates to [`p2ps_core::assignment::otsp2p`] whenever its
//!   preconditions hold, byte-identical plans).
//! * [`RarestFirst`], [`SequentialWindow`] — the BitTorrent-style
//!   baselines from the two peer-selection papers.
//! * [`RandomBaseline`] — the uniform-random floor.
//!
//! The simulator's `ScenarioMatrix` (`p2ps-sim`) crosses every policy
//! with every VoD scenario; the live node (`p2ps-node`) streams through
//! whichever policy its `NodeConfig` carries.
//!
//! # Examples
//!
//! ```
//! use p2ps_policy::{Otsp2p, RandomBaseline, SelectionPolicy, SessionContext};
//! use p2ps_core::PeerClass;
//!
//! let classes = [2u8, 3, 4, 4]
//!     .into_iter()
//!     .map(PeerClass::new)
//!     .collect::<Result<Vec<_>, _>>()?;
//! let ctx = SessionContext::full(&classes, 32);
//! let optimal = Otsp2p.plan(&ctx)?;
//! let random = RandomBaseline.plan(&ctx)?;
//! // Theorem 1: OTSp2p attains the n·δt floor; a random assignment
//! // generally does not.
//! assert_eq!(optimal.min_delay_slots(&ctx), 4);
//! assert!(random.min_delay_slots(&ctx) >= 4);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod context;
mod plan;
mod policies;

pub use context::{Availability, SessionContext, SupplierView};
pub use plan::PolicyPlan;
pub use policies::{Otsp2p, RandomBaseline, RarestFirst, SequentialWindow};

use std::fmt;
use std::sync::Arc;

/// Errors produced by a [`SelectionPolicy`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum PolicyError {
    /// The session has no candidate suppliers.
    NoSuppliers,
    /// The media file is too large for an explicit (non-periodic) plan.
    TooManySegments(u64),
    /// An error from the core assignment model.
    Core(p2ps_core::Error),
}

impl fmt::Display for PolicyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PolicyError::NoSuppliers => write!(f, "no candidate suppliers"),
            PolicyError::TooManySegments(n) => {
                write!(f, "{n} segments exceed the explicit-plan limit")
            }
            PolicyError::Core(e) => write!(f, "assignment error: {e}"),
        }
    }
}

impl std::error::Error for PolicyError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PolicyError::Core(e) => Some(e),
            _ => None,
        }
    }
}

impl From<p2ps_core::Error> for PolicyError {
    fn from(e: p2ps_core::Error) -> Self {
        PolicyError::Core(e)
    }
}

/// A peer-selection policy: decides which supplier transmits which media
/// segments, and re-decides mid-stream when the supplier set changes.
///
/// Implementations must be **deterministic** given the
/// [`SessionContext`] (including its `seed`): the simulator replays the
/// same context across policies for fair comparisons, and the live node
/// retries sessions expecting stable plans.
pub trait SelectionPolicy: Send + Sync {
    /// A short, stable identifier for reports and tables.
    fn name(&self) -> &'static str;

    /// Plans the segment → supplier assignment for the segments
    /// `ctx.playhead() .. ctx.total_segments()`.
    ///
    /// Segments no candidate can supply are simply absent from the plan
    /// (the caller decides whether that is fatal); every assigned segment
    /// must be held by its supplier per the context's availability.
    ///
    /// # Errors
    ///
    /// [`PolicyError::NoSuppliers`] when the context has no candidates;
    /// other variants at each implementation's discretion.
    fn plan(&self, ctx: &SessionContext) -> Result<PolicyPlan, PolicyError>;

    /// Mid-stream re-decision hook: `missing` segments lost their
    /// supplier (departure) or the playhead moved (seek) and the listed
    /// segments must be re-assigned across the context's (surviving)
    /// suppliers.
    ///
    /// The default spreads `missing` (in the given order) greedily onto
    /// the supplier that can deliver each segment earliest — a sensible
    /// recovery for any policy; implementations override to keep their
    /// own ordering discipline.
    ///
    /// # Errors
    ///
    /// Same conditions as [`plan`](Self::plan).
    fn replan(&self, ctx: &SessionContext, missing: &[u64]) -> Result<PolicyPlan, PolicyError> {
        plan::earliest_arrival_plan(ctx, missing)
    }
}

/// A cheaply clonable, type-erased [`SelectionPolicy`] handle, used to
/// carry a policy through configuration structs (`NodeConfig`,
/// `ScenarioMatrix`).
///
/// # Examples
///
/// ```
/// use p2ps_policy::{RarestFirst, SharedPolicy};
///
/// let policy = SharedPolicy::new(RarestFirst);
/// assert_eq!(policy.name(), "rarest-first");
/// let clone = policy.clone(); // shares the same policy object
/// assert_eq!(clone.name(), "rarest-first");
/// ```
#[derive(Clone)]
pub struct SharedPolicy(Arc<dyn SelectionPolicy>);

impl SharedPolicy {
    /// Wraps a policy for shared ownership.
    pub fn new(policy: impl SelectionPolicy + 'static) -> Self {
        SharedPolicy(Arc::new(policy))
    }
}

impl std::ops::Deref for SharedPolicy {
    type Target = dyn SelectionPolicy;

    fn deref(&self) -> &Self::Target {
        &*self.0
    }
}

impl fmt::Debug for SharedPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("SharedPolicy").field(&self.name()).finish()
    }
}

impl Default for SharedPolicy {
    /// The paper's own policy, [`Otsp2p`].
    fn default() -> Self {
        SharedPolicy::new(Otsp2p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p2ps_core::PeerClass;

    fn classes(raw: &[u8]) -> Vec<PeerClass> {
        raw.iter().map(|&k| PeerClass::new(k).unwrap()).collect()
    }

    #[test]
    fn shared_policy_debug_and_default() {
        let p = SharedPolicy::default();
        assert_eq!(p.name(), "otsp2p");
        assert_eq!(format!("{p:?}"), "SharedPolicy(\"otsp2p\")");
    }

    #[test]
    fn error_display_and_source() {
        use std::error::Error as _;
        assert!(!PolicyError::NoSuppliers.to_string().is_empty());
        assert!(!PolicyError::TooManySegments(9).to_string().is_empty());
        let core = PolicyError::from(p2ps_core::Error::NoSuppliers);
        assert!(core.to_string().contains("assignment"));
        assert!(core.source().is_some());
        assert!(PolicyError::NoSuppliers.source().is_none());
    }

    #[test]
    fn default_replan_spreads_over_survivors() {
        let ctx = SessionContext::full(&classes(&[2, 2]), 8);
        let plan = Otsp2p.replan(&ctx, &[4, 5, 6, 7]).unwrap();
        let queues = plan.queues(0, 8);
        let assigned: usize = queues.iter().map(Vec::len).sum();
        assert_eq!(assigned, 4);
        // Both class-2 suppliers carry an equal share.
        assert_eq!(queues[0].len(), 2);
        assert_eq!(queues[1].len(), 2);
    }
}
