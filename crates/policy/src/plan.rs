//! The output of a policy: a (possibly periodic) segment → supplier plan.

use p2ps_core::assignment::Assignment;

use crate::{PolicyError, SessionContext};

/// A segment → supplier assignment for one streaming session.
///
/// The plan stores, per supplier slot (indexed like
/// [`SessionContext::suppliers`]), the segments of one *period* in
/// transmission order; the whole schedule repeats every
/// [`period`](Self::period) segments (the §3 periodic structure). A
/// non-periodic plan is simply one whose period spans the entire file
/// ([`PolicyPlan::explicit`]) — both forms expand to concrete
/// per-supplier transmission queues via [`queues`](Self::queues), and
/// both are expressible on the node's wire format (`SessionPlan`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PolicyPlan {
    period: u32,
    per_slot: Vec<Vec<u32>>,
}

impl PolicyPlan {
    /// A periodic plan: `per_slot[i]` lists supplier `i`'s segments of
    /// one period, in transmission order.
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero or any listed segment is outside
    /// `0..period` — malformed plans are programming errors.
    pub fn periodic(period: u32, per_slot: Vec<Vec<u32>>) -> Self {
        assert!(period > 0, "period must be positive");
        for (i, list) in per_slot.iter().enumerate() {
            for &s in list {
                assert!(s < period, "slot {i}: segment {s} outside period {period}");
            }
        }
        PolicyPlan { period, per_slot }
    }

    /// An explicit (one-shot) plan over a file of `total_segments`
    /// segments: each list is transmitted once, in order.
    ///
    /// # Errors
    ///
    /// [`PolicyError::TooManySegments`] if `total_segments` exceeds
    /// `u32::MAX` (the periodic wire encoding's range).
    pub fn explicit(total_segments: u64, per_slot: Vec<Vec<u64>>) -> Result<Self, PolicyError> {
        let period = u32::try_from(total_segments.max(1))
            .map_err(|_| PolicyError::TooManySegments(total_segments))?;
        let per_slot = per_slot
            .into_iter()
            .map(|list| {
                list.into_iter()
                    .map(|s| {
                        debug_assert!(s < u64::from(period));
                        s as u32
                    })
                    .collect()
            })
            .collect();
        Ok(PolicyPlan { period, per_slot })
    }

    /// Wraps a core [`Assignment`], mapping its internally sorted slots
    /// back to the caller's supplier order (so plan slot `i` is the
    /// context's supplier `i`).
    pub fn from_assignment(a: &Assignment) -> Self {
        let mut per_slot = vec![Vec::new(); a.supplier_count()];
        for (slot, _, segments) in a.iter() {
            per_slot[a.input_index(slot)] = segments.to_vec();
        }
        PolicyPlan {
            period: a.period(),
            per_slot,
        }
    }

    /// The plan's period in segments.
    pub fn period(&self) -> u32 {
        self.period
    }

    /// Number of supplier slots.
    pub fn slot_count(&self) -> usize {
        self.per_slot.len()
    }

    /// Supplier `i`'s per-period segments in transmission order.
    ///
    /// # Panics
    ///
    /// Panics if `i >= slot_count()`.
    pub fn slot(&self, i: usize) -> &[u32] {
        &self.per_slot[i]
    }

    /// Expands the plan into per-supplier transmission queues over a
    /// file of `total_segments`, mirroring the node's wire expansion
    /// *exactly*: transmission ordinal `p` of slot `i` carries segment
    /// `(p / len) · period + list[p % len]`, and the supplier ends its
    /// session at the first out-of-range segment (so a plan whose
    /// per-period list runs out of order across the end of the file
    /// loses its tail on the wire — and loses it here too). Only
    /// segments in `playhead .. total_segments` are kept.
    pub fn queues(&self, playhead: u64, total_segments: u64) -> Vec<Vec<u64>> {
        self.per_slot
            .iter()
            .map(|list| {
                let len = list.len() as u64;
                if len == 0 {
                    return Vec::new();
                }
                let mut queue = Vec::new();
                for p in 0u64.. {
                    let seg =
                        (p / len) * u64::from(self.period) + u64::from(list[(p % len) as usize]);
                    if seg >= total_segments {
                        break;
                    }
                    if seg >= playhead {
                        queue.push(seg);
                    }
                }
                queue
            })
            .collect()
    }

    /// Total segments assigned across all slots when expanded over
    /// `playhead .. total_segments`.
    pub fn assigned_count(&self, playhead: u64, total_segments: u64) -> u64 {
        self.queues(playhead, total_segments)
            .iter()
            .map(|q| q.len() as u64)
            .sum()
    }

    /// The minimum feasible buffering delay of this plan in slots of
    /// `δt`, evaluated over the context's file extent.
    ///
    /// Supplier `i` transmits its queue back to back at its class rate
    /// (`2^(k-1)` slots per segment); playback of segment `s` happens at
    /// slot `D + (s - playhead)`. The returned `D` is the smallest delay
    /// under which no *assigned* segment misses its deadline (unassigned
    /// segments are the caller's concern), floored at one slot.
    pub fn min_delay_slots(&self, ctx: &SessionContext) -> u64 {
        let queues = self.queues(ctx.playhead(), ctx.total_segments());
        let mut delay = 1u64;
        for (i, queue) in queues.iter().enumerate() {
            let cost = ctx.suppliers()[i].slots_per_segment();
            for (j, &seg) in queue.iter().enumerate() {
                let arrival = (j as u64 + 1) * cost;
                let deadline_offset = seg - ctx.playhead();
                delay = delay.max(arrival.saturating_sub(deadline_offset));
            }
        }
        delay
    }
}

/// Greedy earliest-arrival assignment: walks `segments` in the given
/// order and hands each to the holder that can deliver it soonest
/// (ties: faster class, then lower index). Segments nobody holds are
/// skipped. This is the shared fallback for availability-constrained or
/// rate-mismatched supplier sets, and the default
/// [`replan`](crate::SelectionPolicy::replan).
pub(crate) fn earliest_arrival_plan(
    ctx: &SessionContext,
    segments: &[u64],
) -> Result<PolicyPlan, PolicyError> {
    if ctx.supplier_count() == 0 {
        return Err(PolicyError::NoSuppliers);
    }
    let costs: Vec<u64> = ctx.suppliers().iter().map(SupplierViewExt::cost).collect();
    let mut busy = vec![0u64; ctx.supplier_count()];
    let mut lists: Vec<Vec<u64>> = vec![Vec::new(); ctx.supplier_count()];
    for &seg in segments {
        let best = ctx
            .holders(seg)
            .map(|i| (busy[i] + costs[i], costs[i], i))
            .min();
        if let Some((_, _, i)) = best {
            busy[i] += costs[i];
            lists[i].push(seg);
        }
    }
    PolicyPlan::explicit(ctx.total_segments(), lists)
}

/// Local helper trait so the cost lookup reads naturally above.
trait SupplierViewExt {
    fn cost(&self) -> u64;
}

impl SupplierViewExt for crate::SupplierView {
    fn cost(&self) -> u64 {
        self.slots_per_segment()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SupplierView;
    use p2ps_core::assignment::otsp2p;
    use p2ps_core::PeerClass;

    fn classes(raw: &[u8]) -> Vec<PeerClass> {
        raw.iter().map(|&k| PeerClass::new(k).unwrap()).collect()
    }

    #[test]
    fn from_assignment_back_maps_input_order() {
        // Input order [4, 2, 4, 3]: the assignment sorts internally; the
        // plan must hand slot i the segments of *input* supplier i.
        let cs = classes(&[4, 2, 4, 3]);
        let a = otsp2p(&cs).unwrap();
        let plan = PolicyPlan::from_assignment(&a);
        assert_eq!(plan.period(), 8);
        assert_eq!(plan.slot(1), &[0, 1, 3, 7]); // the class-2 supplier
        assert_eq!(plan.slot(3), &[2, 6]); // the class-3 supplier
        for slot in 0..a.supplier_count() {
            assert_eq!(plan.slot(a.input_index(slot)), a.segments_of(slot));
        }
    }

    #[test]
    fn periodic_queue_expansion_matches_wire_semantics() {
        let a = otsp2p(&classes(&[2, 2])).unwrap();
        let plan = PolicyPlan::from_assignment(&a);
        let queues = plan.queues(0, 5);
        // period 2: slot 0 owns segment 1 (+2k), slot 1 owns 0 (+2k).
        assert_eq!(queues[0], vec![1, 3]);
        assert_eq!(queues[1], vec![0, 2, 4]);
        assert_eq!(plan.assigned_count(0, 5), 5);
        // playhead filters delivered segments out of the queues
        assert_eq!(plan.queues(2, 5)[1], vec![2, 4]);
    }

    #[test]
    fn min_delay_matches_assignment_delay() {
        for raw in [&[2u8, 3, 4, 4][..], &[2, 2], &[1], &[2, 3, 4, 5, 5]] {
            let cs = classes(raw);
            let a = otsp2p(&cs).unwrap();
            let plan = PolicyPlan::from_assignment(&a);
            let ctx = crate::SessionContext::full(&cs, u64::from(a.period()) * 4);
            assert_eq!(
                plan.min_delay_slots(&ctx),
                u64::from(a.buffering_delay_slots()),
                "classes {raw:?}"
            );
        }
    }

    #[test]
    fn explicit_plans_span_the_file_once() {
        let plan = PolicyPlan::explicit(6, vec![vec![0, 2, 4], vec![1, 3, 5]]).unwrap();
        assert_eq!(plan.period(), 6);
        let queues = plan.queues(0, 6);
        assert_eq!(queues[0], vec![0, 2, 4]);
        assert_eq!(queues[1], vec![1, 3, 5]);
    }

    #[test]
    fn out_of_order_period_lists_truncate_like_the_wire() {
        // Transmission order 3,0 within a 4-segment period: the node's
        // supplier ends the session at the first out-of-range segment
        // (second period's 4+3=7), so the in-range 4+0=4 behind it is
        // never transmitted — the expansion must agree with the wire,
        // not flatter the plan.
        let plan = PolicyPlan::periodic(4, vec![vec![3, 0], vec![1, 2]]);
        let queues = plan.queues(0, 6);
        assert_eq!(queues[0], vec![3, 0]); // 7 ends the session; 4 is lost
        assert_eq!(queues[1], vec![1, 2, 5]);
    }

    #[test]
    fn earliest_arrival_respects_availability() {
        let ctx = crate::SessionContext::new(
            vec![
                SupplierView::prefix(PeerClass::new(2).unwrap(), 2),
                SupplierView::full(PeerClass::new(3).unwrap()),
            ],
            4,
        );
        let plan = earliest_arrival_plan(&ctx, &[0, 1, 2, 3]).unwrap();
        let queues = plan.queues(0, 4);
        // Segments 2 and 3 can only come from the full supplier.
        assert!(queues[1].contains(&2));
        assert!(queues[1].contains(&3));
        assert!(queues[0].iter().all(|&s| s < 2));
        assert_eq!(plan.assigned_count(0, 4), 4);
    }

    #[test]
    fn unassignable_segments_are_skipped() {
        let ctx = crate::SessionContext::new(
            vec![SupplierView::prefix(PeerClass::new(1).unwrap(), 2)],
            4,
        );
        let plan = earliest_arrival_plan(&ctx, &[0, 1, 2, 3]).unwrap();
        assert_eq!(plan.assigned_count(0, 4), 2);
    }

    #[test]
    fn empty_supplier_set_is_an_error() {
        let ctx = crate::SessionContext::new(Vec::new(), 4);
        assert!(matches!(
            earliest_arrival_plan(&ctx, &[0]),
            Err(PolicyError::NoSuppliers)
        ));
    }

    #[test]
    #[should_panic(expected = "outside period")]
    fn periodic_validates_range() {
        let _ = PolicyPlan::periodic(2, vec![vec![2]]);
    }
}
