//! The four built-in selection policies.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use p2ps_core::assignment::otsp2p;

use crate::plan::earliest_arrival_plan;
use crate::{PolicyError, PolicyPlan, SelectionPolicy, SessionContext};

/// SplitMix64: a tiny, high-quality mixing function for deterministic
/// per-segment tie-breaking without carrying generator state around.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// The paper's §3 optimal assignment behind the policy trait.
///
/// Whenever the §3 preconditions hold (every supplier owns the full
/// file, offers sum to exactly `R0`, planning from the start of the
/// file), the plan *is* [`p2ps_core::assignment::otsp2p`] — the node's
/// pre-refactor code path, segment for segment. Outside those
/// preconditions (partial files, mid-stream replans, rate-mismatched
/// survivor sets) it falls back to a deadline-greedy assignment in
/// playback order, which preserves the policy's startup-first character.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Otsp2p;

impl SelectionPolicy for Otsp2p {
    fn name(&self) -> &'static str {
        "otsp2p"
    }

    fn plan(&self, ctx: &SessionContext) -> Result<PolicyPlan, PolicyError> {
        if ctx.supplier_count() == 0 {
            return Err(PolicyError::NoSuppliers);
        }
        if ctx.playhead() == 0 && ctx.all_full() && ctx.rate_matched() {
            let assignment = otsp2p(&ctx.classes())?;
            return Ok(PolicyPlan::from_assignment(&assignment));
        }
        let needed: Vec<u64> = ctx.needed().collect();
        earliest_arrival_plan(ctx, &needed)
    }

    fn replan(&self, ctx: &SessionContext, missing: &[u64]) -> Result<PolicyPlan, PolicyError> {
        let mut ordered = missing.to_vec();
        ordered.sort_unstable(); // earliest playback deadline first
        earliest_arrival_plan(ctx, &ordered)
    }
}

/// BitTorrent-style *sequential window* selection (the "sequential" /
/// in-order policy of the peer-selection literature): segments are
/// fetched in playback order, and within each window of `window`
/// segments every supplier receives one contiguous run sized by its
/// bandwidth share — the generalization of the paper's Figure-1
/// "Assignment I" from one period to an arbitrary window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SequentialWindow {
    /// Lookahead window in segments (at least 1).
    pub window: u32,
}

impl SequentialWindow {
    /// A sequential policy with the given window.
    pub fn new(window: u32) -> Self {
        SequentialWindow {
            window: window.max(1),
        }
    }
}

impl Default for SequentialWindow {
    /// A 16-segment window, roughly two periods of the paper's
    /// four-class evaluation sessions.
    fn default() -> Self {
        SequentialWindow::new(16)
    }
}

impl SequentialWindow {
    fn windowed_plan(
        &self,
        ctx: &SessionContext,
        segments: &[u64],
    ) -> Result<PolicyPlan, PolicyError> {
        if ctx.supplier_count() == 0 {
            return Err(PolicyError::NoSuppliers);
        }
        // Suppliers in descending-bandwidth order (stable), as the
        // contiguous baseline sorts them.
        let mut order: Vec<usize> = (0..ctx.supplier_count()).collect();
        order.sort_by_key(|&i| (ctx.suppliers()[i].slots_per_segment(), i));
        let weights: Vec<f64> = order
            .iter()
            .map(|&i| 1.0 / ctx.suppliers()[i].slots_per_segment() as f64)
            .collect();
        let total_weight: f64 = weights.iter().sum();

        let mut lists: Vec<Vec<u64>> = vec![Vec::new(); ctx.supplier_count()];
        let mut leftovers: Vec<u64> = Vec::new();
        for window in segments.chunks(self.window as usize) {
            // Cumulative rounding partitions the window exactly, one
            // contiguous run per supplier, fastest first.
            let len = window.len() as f64;
            let mut cum = 0.0;
            let mut start = 0usize;
            for (rank, &i) in order.iter().enumerate() {
                cum += weights[rank];
                let end = ((len * cum / total_weight).round() as usize).min(window.len());
                for &seg in &window[start..end] {
                    if ctx.suppliers()[i].availability.has(seg) {
                        lists[i].push(seg);
                    } else {
                        leftovers.push(seg);
                    }
                }
                start = end;
            }
        }
        if !leftovers.is_empty() {
            // Partial-file gaps: hand the stragglers to whoever can
            // deliver them soonest, after the sequential runs.
            let mut busy: Vec<u64> = lists
                .iter()
                .enumerate()
                .map(|(i, l)| l.len() as u64 * ctx.suppliers()[i].slots_per_segment())
                .collect();
            leftovers.sort_unstable();
            for seg in leftovers {
                let best = ctx
                    .holders(seg)
                    .map(|i| {
                        let cost = ctx.suppliers()[i].slots_per_segment();
                        (busy[i] + cost, cost, i)
                    })
                    .min();
                if let Some((_, cost, i)) = best {
                    busy[i] += cost;
                    lists[i].push(seg);
                }
            }
        }
        PolicyPlan::explicit(ctx.total_segments(), lists)
    }
}

impl SelectionPolicy for SequentialWindow {
    fn name(&self) -> &'static str {
        "sequential-window"
    }

    fn plan(&self, ctx: &SessionContext) -> Result<PolicyPlan, PolicyError> {
        let needed: Vec<u64> = ctx.needed().collect();
        self.windowed_plan(ctx, &needed)
    }

    fn replan(&self, ctx: &SessionContext, missing: &[u64]) -> Result<PolicyPlan, PolicyError> {
        let mut ordered = missing.to_vec();
        ordered.sort_unstable();
        self.windowed_plan(ctx, &ordered)
    }
}

/// BitTorrent's *rarest-first* piece selection: segments held by the
/// fewest candidate suppliers are fetched first (ties broken by a
/// seeded hash — BitTorrent picks randomly among the rarest), each from
/// the supplier that can deliver it soonest.
///
/// Rarest-first maximizes piece diversity in swarms but ignores playback
/// order, which is exactly why the on-demand streaming literature finds
/// it hurts startup delay — the contrast the scenario matrix measures.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RarestFirst;

impl RarestFirst {
    fn rarity_plan(
        &self,
        ctx: &SessionContext,
        segments: &[u64],
    ) -> Result<PolicyPlan, PolicyError> {
        if ctx.supplier_count() == 0 {
            return Err(PolicyError::NoSuppliers);
        }
        // Key each segment once up front: rarity costs a supplier scan
        // and the sort would otherwise recompute it per comparison.
        let mut keyed: Vec<(usize, u64, u64)> = segments
            .iter()
            .map(|&seg| (ctx.holders(seg).count(), splitmix64(ctx.seed() ^ seg), seg))
            .collect();
        keyed.sort_unstable();
        let ordered: Vec<u64> = keyed.into_iter().map(|(_, _, seg)| seg).collect();
        earliest_arrival_plan(ctx, &ordered)
    }
}

impl SelectionPolicy for RarestFirst {
    fn name(&self) -> &'static str {
        "rarest-first"
    }

    fn plan(&self, ctx: &SessionContext) -> Result<PolicyPlan, PolicyError> {
        let needed: Vec<u64> = ctx.needed().collect();
        self.rarity_plan(ctx, &needed)
    }

    fn replan(&self, ctx: &SessionContext, missing: &[u64]) -> Result<PolicyPlan, PolicyError> {
        self.rarity_plan(ctx, missing)
    }
}

/// The uniform-random floor: segments are transmitted in a seeded random
/// order, each by a uniformly chosen holder — no deadline awareness, no
/// load balancing. Every other policy should beat it.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RandomBaseline;

impl RandomBaseline {
    fn random_plan(
        &self,
        ctx: &SessionContext,
        segments: &[u64],
    ) -> Result<PolicyPlan, PolicyError> {
        if ctx.supplier_count() == 0 {
            return Err(PolicyError::NoSuppliers);
        }
        let mut rng = SmallRng::seed_from_u64(splitmix64(ctx.seed() ^ 0x5e1e_c7ed));
        let mut ordered: Vec<u64> = segments.to_vec();
        // Fisher–Yates (the vendored rand has no shuffle helper).
        for i in (1..ordered.len()).rev() {
            let j = rng.gen_range(0..=i);
            ordered.swap(i, j);
        }
        let mut lists: Vec<Vec<u64>> = vec![Vec::new(); ctx.supplier_count()];
        for seg in ordered {
            let holders: Vec<usize> = ctx.holders(seg).collect();
            if holders.is_empty() {
                continue;
            }
            lists[holders[rng.gen_range(0..holders.len())]].push(seg);
        }
        PolicyPlan::explicit(ctx.total_segments(), lists)
    }
}

impl SelectionPolicy for RandomBaseline {
    fn name(&self) -> &'static str {
        "random"
    }

    fn plan(&self, ctx: &SessionContext) -> Result<PolicyPlan, PolicyError> {
        let needed: Vec<u64> = ctx.needed().collect();
        self.random_plan(ctx, &needed)
    }

    fn replan(&self, ctx: &SessionContext, missing: &[u64]) -> Result<PolicyPlan, PolicyError> {
        self.random_plan(ctx, missing)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SupplierView;
    use p2ps_core::PeerClass;

    fn classes(raw: &[u8]) -> Vec<PeerClass> {
        raw.iter().map(|&k| PeerClass::new(k).unwrap()).collect()
    }

    fn coverage(plan: &PolicyPlan, playhead: u64, total: u64) -> Vec<u64> {
        let mut all: Vec<u64> = plan.queues(playhead, total).into_iter().flatten().collect();
        all.sort_unstable();
        all
    }

    #[test]
    fn otsp2p_policy_matches_core_algorithm() {
        let cs = classes(&[4, 2, 4, 3]);
        let ctx = SessionContext::full(&cs, 16);
        let plan = Otsp2p.plan(&ctx).unwrap();
        let a = otsp2p(&cs).unwrap();
        assert_eq!(plan, PolicyPlan::from_assignment(&a));
        assert_eq!(plan.min_delay_slots(&ctx), 4);
    }

    #[test]
    fn otsp2p_falls_back_on_partial_files() {
        let ctx = SessionContext::new(
            vec![
                SupplierView::full(PeerClass::new(2).unwrap()),
                SupplierView::prefix(PeerClass::new(2).unwrap(), 4),
            ],
            8,
        );
        let plan = Otsp2p.plan(&ctx).unwrap();
        assert_eq!(coverage(&plan, 0, 8), (0..8).collect::<Vec<_>>());
        // The tail only the full supplier holds must sit in its queue.
        for seg in 4..8 {
            assert!(plan.queues(0, 8)[0].contains(&seg));
        }
    }

    #[test]
    fn every_policy_covers_a_full_session() {
        let cs = classes(&[2, 3, 4, 4]);
        let ctx = SessionContext::full(&cs, 24).with_seed(11);
        for policy in [
            &Otsp2p as &dyn SelectionPolicy,
            &SequentialWindow::default(),
            &RarestFirst,
            &RandomBaseline,
        ] {
            let plan = policy.plan(&ctx).unwrap();
            assert_eq!(
                coverage(&plan, 0, 24),
                (0..24).collect::<Vec<_>>(),
                "policy {}",
                policy.name()
            );
        }
    }

    #[test]
    fn policies_are_deterministic_per_seed() {
        let cs = classes(&[2, 3, 4, 4]);
        let ctx = SessionContext::full(&cs, 32).with_seed(42);
        for policy in [&RarestFirst as &dyn SelectionPolicy, &RandomBaseline] {
            let a = policy.plan(&ctx).unwrap();
            let b = policy.plan(&ctx).unwrap();
            assert_eq!(a, b, "policy {}", policy.name());
        }
        let other = SessionContext::full(&cs, 32).with_seed(43);
        assert_ne!(
            RandomBaseline.plan(&ctx).unwrap(),
            RandomBaseline.plan(&other).unwrap(),
            "different seeds should differ"
        );
    }

    #[test]
    fn sequential_window_mirrors_contiguous_within_one_period() {
        // Window == period over a rate-matched full-file session: the
        // first window is exactly the paper's Assignment I.
        let cs = classes(&[2, 3, 4, 4]);
        let ctx = SessionContext::full(&cs, 8);
        let plan = SequentialWindow::new(8).plan(&ctx).unwrap();
        let queues = plan.queues(0, 8);
        assert_eq!(queues[0], vec![0, 1, 2, 3]); // class-2: half the window
        assert_eq!(queues[1], vec![4, 5]); // class-3: a quarter
        assert_eq!(queues[2], vec![6]);
        assert_eq!(queues[3], vec![7]);
    }

    #[test]
    fn rarest_first_prioritizes_scarce_segments() {
        // Segments >= 6 are held only by the full supplier; rarest-first
        // must transmit them before the widely held prefix.
        let ctx = SessionContext::new(
            vec![
                SupplierView::full(PeerClass::new(2).unwrap()),
                SupplierView::prefix(PeerClass::new(2).unwrap(), 6),
                SupplierView::prefix(PeerClass::new(2).unwrap(), 6),
            ],
            8,
        );
        let plan = RarestFirst.plan(&ctx).unwrap();
        let full_queue = &plan.queues(0, 8)[0];
        let mut lead: Vec<u64> = full_queue[..2].to_vec();
        lead.sort_unstable(); // ties among equally rare segments break randomly
        assert_eq!(lead, vec![6, 7], "rarest segments lead");
    }

    #[test]
    fn random_baseline_is_worse_than_otsp2p_on_delay() {
        let cs = classes(&[2, 3, 4, 4]);
        let mut random_worse = 0;
        for seed in 0..16 {
            let ctx = SessionContext::full(&cs, 32).with_seed(seed);
            let opt = Otsp2p.plan(&ctx).unwrap().min_delay_slots(&ctx);
            let rnd = RandomBaseline.plan(&ctx).unwrap().min_delay_slots(&ctx);
            assert!(rnd >= opt, "seed {seed}: random {rnd} beat optimal {opt}");
            if rnd > opt {
                random_worse += 1;
            }
        }
        assert!(random_worse > 8, "random should usually be strictly worse");
    }

    #[test]
    fn empty_context_errors_for_all_policies() {
        let ctx = SessionContext::new(Vec::new(), 8);
        for policy in [
            &Otsp2p as &dyn SelectionPolicy,
            &SequentialWindow::default(),
            &RarestFirst,
            &RandomBaseline,
        ] {
            assert!(matches!(policy.plan(&ctx), Err(PolicyError::NoSuppliers)));
            assert!(matches!(
                policy.replan(&ctx, &[1]),
                Err(PolicyError::NoSuppliers)
            ));
        }
    }
}
