//! The policy's view of one streaming session.

use p2ps_core::{Bandwidth, PeerClass};

/// Which media segments a candidate supplier currently holds.
///
/// The paper's model assumes every supplier owns the complete file; VoD
/// systems also see *partial* suppliers — peers still streaming
/// themselves, or peers that departed before finishing — which hold a
/// prefix of the file (segments arrive roughly in playback order).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Availability {
    /// The supplier holds every segment of the file.
    Full,
    /// The supplier holds segments `0 .. n` only.
    Prefix(u64),
}

impl Availability {
    /// Whether segment `seg` is held.
    pub fn has(self, seg: u64) -> bool {
        match self {
            Availability::Full => true,
            Availability::Prefix(n) => seg < n,
        }
    }
}

/// One candidate supplier as a policy sees it: its bandwidth class and
/// the segments it can serve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SupplierView {
    /// Bandwidth class (class `k` offers `R0 / 2^(k-1)`, i.e. needs
    /// `2^(k-1)` slots of `δt` per segment).
    pub class: PeerClass,
    /// The segments this supplier holds.
    pub availability: Availability,
}

impl SupplierView {
    /// A full-file supplier of the given class.
    pub fn full(class: PeerClass) -> Self {
        SupplierView {
            class,
            availability: Availability::Full,
        }
    }

    /// A supplier holding only the first `n` segments.
    pub fn prefix(class: PeerClass, n: u64) -> Self {
        SupplierView {
            class,
            availability: Availability::Prefix(n),
        }
    }

    /// Transmission cost of one segment in slots of `δt`.
    pub fn slots_per_segment(&self) -> u64 {
        u64::from(self.class.slots_per_segment())
    }
}

/// Everything a [`SelectionPolicy`](crate::SelectionPolicy) gets to see
/// when planning one session: the candidate suppliers with their
/// per-supplier state, the media extent, the playhead, and a determinism
/// seed.
///
/// # Examples
///
/// ```
/// use p2ps_policy::{SessionContext, SupplierView};
/// use p2ps_core::PeerClass;
///
/// let ctx = SessionContext::new(
///     vec![
///         SupplierView::full(PeerClass::new(2)?),
///         SupplierView::prefix(PeerClass::new(2)?, 10),
///     ],
///     20,
/// );
/// assert_eq!(ctx.needed().count(), 20);
/// assert!(ctx.rate_matched()); // two class-2 offers sum to R0
/// assert!(!ctx.all_full());
/// # Ok::<(), p2ps_core::Error>(())
/// ```
#[derive(Debug, Clone)]
pub struct SessionContext {
    suppliers: Vec<SupplierView>,
    total_segments: u64,
    playhead: u64,
    seed: u64,
}

impl SessionContext {
    /// A context over `suppliers` for a file of `total_segments`
    /// segments, playhead at the start, seed 0.
    pub fn new(suppliers: Vec<SupplierView>, total_segments: u64) -> Self {
        SessionContext {
            suppliers,
            total_segments,
            playhead: 0,
            seed: 0,
        }
    }

    /// Shorthand: full-file suppliers of the given classes.
    pub fn full(classes: &[PeerClass], total_segments: u64) -> Self {
        SessionContext::new(
            classes.iter().copied().map(SupplierView::full).collect(),
            total_segments,
        )
    }

    /// Sets the playhead: the first segment the requester still needs.
    #[must_use]
    pub fn with_playhead(mut self, playhead: u64) -> Self {
        self.playhead = playhead;
        self
    }

    /// Sets the determinism seed (e.g. the session id); randomized
    /// policies derive their generator from it.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The candidate suppliers.
    pub fn suppliers(&self) -> &[SupplierView] {
        &self.suppliers
    }

    /// Number of candidate suppliers.
    pub fn supplier_count(&self) -> usize {
        self.suppliers.len()
    }

    /// Total number of segments in the media file.
    pub fn total_segments(&self) -> u64 {
        self.total_segments
    }

    /// The first segment the requester still needs.
    pub fn playhead(&self) -> u64 {
        self.playhead
    }

    /// The determinism seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The segments the session still needs, in playback order.
    pub fn needed(&self) -> impl Iterator<Item = u64> + '_ {
        self.playhead..self.total_segments
    }

    /// The supplier classes in context order.
    pub fn classes(&self) -> Vec<PeerClass> {
        self.suppliers.iter().map(|s| s.class).collect()
    }

    /// Whether every supplier holds the complete file.
    pub fn all_full(&self) -> bool {
        self.suppliers
            .iter()
            .all(|s| s.availability == Availability::Full)
    }

    /// Whether the aggregate supplier bandwidth equals the playback rate
    /// `R0` exactly — the §3 precondition of the periodic assignments.
    pub fn rate_matched(&self) -> bool {
        let mut total = Bandwidth::ZERO;
        for s in &self.suppliers {
            match total.checked_add(s.class.bandwidth()) {
                Some(t) => total = t,
                None => return false,
            }
        }
        total.is_full_rate()
    }

    /// The suppliers (by index) holding segment `seg`.
    pub fn holders(&self, seg: u64) -> impl Iterator<Item = usize> + '_ {
        self.suppliers
            .iter()
            .enumerate()
            .filter(move |(_, s)| s.availability.has(seg))
            .map(|(i, _)| i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn class(k: u8) -> PeerClass {
        PeerClass::new(k).unwrap()
    }

    #[test]
    fn availability_membership() {
        assert!(Availability::Full.has(1_000_000));
        assert!(Availability::Prefix(3).has(2));
        assert!(!Availability::Prefix(3).has(3));
    }

    #[test]
    fn context_accessors() {
        let ctx = SessionContext::full(&[class(2), class(3), class(3)], 12)
            .with_playhead(4)
            .with_seed(9);
        assert_eq!(ctx.supplier_count(), 3);
        assert_eq!(ctx.total_segments(), 12);
        assert_eq!(ctx.playhead(), 4);
        assert_eq!(ctx.seed(), 9);
        assert_eq!(
            ctx.needed().collect::<Vec<_>>(),
            (4..12).collect::<Vec<_>>()
        );
        assert!(ctx.rate_matched());
        assert!(ctx.all_full());
        assert_eq!(ctx.classes(), vec![class(2), class(3), class(3)]);
    }

    #[test]
    fn rate_matching_detects_deficit_and_overflow() {
        assert!(!SessionContext::full(&[class(2)], 4).rate_matched());
        assert!(!SessionContext::full(&[class(1), class(2)], 4).rate_matched());
        assert!(SessionContext::full(&[class(1)], 4).rate_matched());
    }

    #[test]
    fn holders_respect_prefixes() {
        let ctx = SessionContext::new(
            vec![
                SupplierView::full(class(2)),
                SupplierView::prefix(class(2), 2),
            ],
            4,
        );
        assert_eq!(ctx.holders(1).collect::<Vec<_>>(), vec![0, 1]);
        assert_eq!(ctx.holders(3).collect::<Vec<_>>(), vec![0]);
    }
}
