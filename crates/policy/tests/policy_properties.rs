//! Property tests for the policy layer.
//!
//! The load-bearing guarantee of the refactor: `Otsp2p` *through the
//! trait* produces exactly the assignment the pre-refactor inline code
//! path (`p2ps_core::assignment::otsp2p` + `input_index` back-mapping)
//! produced, for every valid supplier set — so the live requester's
//! wire messages are byte-identical. Plus structural invariants every
//! policy must uphold on arbitrary sessions.

use proptest::prelude::*;

use p2ps_core::assignment::otsp2p;
use p2ps_core::PeerClass;
use p2ps_policy::{
    Otsp2p, PolicyPlan, RandomBaseline, RarestFirst, SelectionPolicy, SequentialWindow,
    SessionContext, SupplierView,
};

/// A random supplier multiset whose offers sum to exactly `R0`: start
/// from one class-1 supplier (full rate) and repeatedly split one
/// supplier of class `k` into two of class `k+1`.
fn rate_matched_classes() -> impl Strategy<Value = Vec<PeerClass>> {
    (prop::collection::vec(any::<u32>(), 0..12), 0u8..6).prop_map(|(picks, _)| {
        let mut classes: Vec<u8> = vec![1];
        for pick in picks {
            let i = (pick as usize) % classes.len();
            // Class 5 is the deepest the paper's evaluation world goes.
            if classes[i] < 5 {
                let k = classes[i];
                classes[i] = k + 1;
                classes.push(k + 1);
            }
        }
        classes
            .into_iter()
            .map(|k| PeerClass::new(k).unwrap())
            .collect()
    })
}

proptest! {
    /// The refactor equivalence: trait plan == inline-algorithm plan.
    #[test]
    fn otsp2p_through_the_trait_is_the_pre_refactor_assignment(
        classes in rate_matched_classes(),
        periods in 1u64..6,
        seed in any::<u64>(),
    ) {
        let a = otsp2p(&classes).unwrap();
        let total = u64::from(a.period()) * periods;
        let ctx = SessionContext::full(&classes, total).with_seed(seed);
        let plan = Otsp2p.plan(&ctx).unwrap();

        // Identical plan object (period + per-slot lists in input order) —
        // this is exactly what the requester serializes into SessionPlan
        // frames, so the wire bytes are identical too.
        prop_assert_eq!(&plan, &PolicyPlan::from_assignment(&a));
        for slot in 0..a.supplier_count() {
            prop_assert_eq!(plan.slot(a.input_index(slot)), a.segments_of(slot));
        }
        // And the advertised delay is the Theorem-1 optimum the old path
        // reported via Assignment::buffering_delay.
        prop_assert_eq!(plan.min_delay_slots(&ctx), u64::from(a.buffering_delay_slots()));
    }

    /// Every policy partitions the needed segments among holders: no
    /// duplicates, nothing out of range, nothing a supplier lacks.
    #[test]
    fn plans_are_valid_partitions(
        classes in rate_matched_classes(),
        total in 1u64..96,
        seed in any::<u64>(),
        prefix_fracs in prop::collection::vec(0.25f64..1.0, 12),
    ) {
        let suppliers: Vec<SupplierView> = classes
            .iter()
            .enumerate()
            .map(|(i, &c)| {
                if i == 0 {
                    SupplierView::full(c) // a seed guarantees coverage
                } else {
                    SupplierView::prefix(c, ((total as f64) * prefix_fracs[i % prefix_fracs.len()]).ceil() as u64)
                }
            })
            .collect();
        let ctx = SessionContext::new(suppliers.clone(), total).with_seed(seed);
        for policy in [
            &Otsp2p as &dyn SelectionPolicy,
            &SequentialWindow::default(),
            &RarestFirst,
            &RandomBaseline,
        ] {
            let plan = policy.plan(&ctx).unwrap();
            prop_assert_eq!(plan.slot_count(), suppliers.len());
            let queues = plan.queues(0, total);
            let mut seen = vec![false; total as usize];
            for (i, queue) in queues.iter().enumerate() {
                for &seg in queue {
                    prop_assert!(seg < total, "{}: segment {seg} out of range", policy.name());
                    prop_assert!(
                        suppliers[i].availability.has(seg),
                        "{}: supplier {i} lacks segment {seg}",
                        policy.name()
                    );
                    prop_assert!(!seen[seg as usize], "{}: segment {seg} duplicated", policy.name());
                    seen[seg as usize] = true;
                }
            }
            // A full-file seed exists, so everything must be assigned.
            prop_assert!(seen.iter().all(|&b| b), "{}: unassigned segments", policy.name());
        }
    }

    /// Replans cover exactly the missing set over the surviving suppliers.
    #[test]
    fn replans_cover_the_missing_segments(
        classes in rate_matched_classes(),
        total in 8u64..64,
        seed in any::<u64>(),
        take in 1u64..8,
    ) {
        let ctx = SessionContext::full(&classes, total).with_seed(seed);
        let missing: Vec<u64> = (0..total).step_by(take as usize).collect();
        for policy in [
            &Otsp2p as &dyn SelectionPolicy,
            &SequentialWindow::default(),
            &RarestFirst,
            &RandomBaseline,
        ] {
            let plan = policy.replan(&ctx, &missing).unwrap();
            let mut assigned: Vec<u64> = plan.queues(0, total).into_iter().flatten().collect();
            assigned.sort_unstable();
            prop_assert_eq!(&assigned, &missing, "{}", policy.name());
        }
    }
}
