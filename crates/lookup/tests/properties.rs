//! Property-based tests for the lookup substrates: the directory's
//! sampling contract and Chord's routing/storage invariants under churn.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

use p2ps_core::{PeerClass, PeerId};
use p2ps_lookup::chord::{ChordId, ChordRing};
use p2ps_lookup::{Directory, Rendezvous};

fn class(k: u8) -> PeerClass {
    PeerClass::new(k).unwrap()
}

proptest! {
    /// Directory samples are distinct, bounded by both `m` and the
    /// population, and consist only of registered peers.
    #[test]
    fn directory_sampling_contract(
        population in prop::collection::hash_set(0u64..500, 0..80),
        m in 0usize..20,
        seed in 0u64..1_000,
    ) {
        let mut dir = Directory::new();
        for &id in &population {
            dir.register("item", PeerId::new(id), class(1 + (id % 4) as u8));
        }
        let mut rng = SmallRng::seed_from_u64(seed);
        let sample = dir.sample("item", m, &mut rng);
        prop_assert_eq!(sample.len(), m.min(population.len()));
        let mut ids: Vec<u64> = sample.iter().map(|c| c.id.get()).collect();
        ids.sort_unstable();
        let before = ids.len();
        ids.dedup();
        prop_assert_eq!(ids.len(), before, "duplicates in sample");
        for id in ids {
            prop_assert!(population.contains(&id));
        }
    }

    /// Register/unregister sequences leave exactly the surviving set.
    #[test]
    fn directory_membership_matches_model(
        ops in prop::collection::vec((any::<bool>(), 0u64..50), 0..120),
    ) {
        let mut dir = Directory::new();
        let mut model = std::collections::HashSet::new();
        for (add, id) in ops {
            if add {
                dir.register("x", PeerId::new(id), class(1));
                model.insert(id);
            } else {
                dir.unregister("x", PeerId::new(id));
                model.remove(&id);
            }
        }
        prop_assert_eq!(dir.supplier_count("x"), model.len());
        let mut listed: Vec<u64> = dir.suppliers("x").iter().map(|c| c.id.get()).collect();
        listed.sort_unstable();
        let mut expected: Vec<u64> = model.into_iter().collect();
        expected.sort_unstable();
        prop_assert_eq!(listed, expected);
    }

    /// Chord routing from any start node finds the ground-truth successor
    /// of any key, for any membership. (Sizes kept small: ring joins
    /// recompute all finger tables, so large memberships belong in the
    /// Criterion benches, not here.)
    #[test]
    fn chord_routes_to_true_successor(
        members in prop::collection::hash_set(0u64..10_000, 1..16),
        probes in prop::collection::vec(any::<u64>(), 1..4),
    ) {
        let mut ring = ChordRing::new();
        for &m in &members {
            ring.join(PeerId::new(m));
        }
        // Ground truth: sorted node ids on the circle.
        let mut ids: Vec<u64> = ring.node_ids().map(|i| i.raw()).collect();
        ids.sort_unstable();
        for &probe in &probes {
            let key = ChordId::from_raw(probe);
            let expected = *ids
                .iter()
                .find(|&&i| i >= probe)
                .unwrap_or(&ids[0]);
            let starts: Vec<ChordId> = ring.node_ids().step_by(7).collect();
            for start in starts {
                let got = ring.lookup_from(start, key);
                prop_assert_eq!(got.owner.raw(), expected);
                prop_assert!(got.hops as usize <= members.len());
            }
        }
    }

    /// Keys survive arbitrary join/leave churn as long as at least one
    /// node remains.
    #[test]
    fn chord_keys_survive_churn(
        initial in prop::collection::hash_set(0u64..1_000, 2..12),
        churn in prop::collection::vec((any::<bool>(), 0u64..1_000), 0..24),
        item in "[a-z]{1,10}",
    ) {
        let mut ring = ChordRing::new();
        for &m in &initial {
            ring.join(PeerId::new(m));
        }
        ring.register(&item, PeerId::new(424242), class(2));
        let mut live: std::collections::HashSet<u64> = initial.clone();
        for (join, id) in churn {
            if join {
                ring.join(PeerId::new(id));
                live.insert(id);
            } else if live.len() > 1 {
                ring.leave(PeerId::new(id));
                live.remove(&id);
            }
        }
        prop_assert!(!ring.is_empty());
        prop_assert_eq!(ring.supplier_count(&item), 1, "the key vanished under churn");
        let mut rng = SmallRng::seed_from_u64(7);
        let got = ring.sample(&item, 4, &mut rng);
        prop_assert_eq!(got.len(), 1);
        prop_assert_eq!(got[0].id, PeerId::new(424242));
    }

    /// Hop counts stay logarithmic-ish: never more than 2·log2(n) + 2 on
    /// rings of any sampled size.
    #[test]
    fn chord_hops_bounded(n in 2u64..96, probe in any::<u64>()) {
        let mut ring = ChordRing::new();
        for i in 0..n {
            ring.join(PeerId::new(i));
        }
        let bound = 2.0 * (n as f64).log2() + 2.0;
        let got = ring.lookup(ChordId::from_raw(probe));
        prop_assert!(
            (got.hops as f64) <= bound,
            "{} hops on a {n}-node ring (bound {bound:.1})",
            got.hops
        );
    }
}
