//! The lookup-service abstraction.

use p2ps_core::{PeerClass, PeerId};
use rand::RngCore;
use serde::{Deserialize, Serialize};

/// A candidate supplying peer returned by a lookup query.
///
/// The paper assumes "the class of each candidate is also obtained"
/// (§4.2), so lookup results carry the advertised class alongside the
/// identity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CandidateInfo {
    /// The candidate's identity.
    pub id: PeerId,
    /// The candidate's advertised bandwidth class.
    pub class: PeerClass,
}

impl CandidateInfo {
    /// Creates a candidate record.
    pub fn new(id: PeerId, class: PeerClass) -> Self {
        CandidateInfo { id, class }
    }
}

/// A lookup service that maps a media item to candidate supplying peers.
///
/// Implemented by the centralized [`Directory`](crate::Directory) and by
/// the [`chord`](crate::chord) ring. The admission layer only ever needs
/// these three operations.
pub trait Rendezvous {
    /// Announces `peer` (of class `class`) as a supplier of `item`.
    fn register(&mut self, item: &str, peer: PeerId, class: PeerClass);

    /// Removes `peer` from the supplier set of `item`. Unknown peers are
    /// ignored.
    fn unregister(&mut self, item: &str, peer: PeerId);

    /// Returns up to `m` distinct candidates for `item`, sampled uniformly
    /// at random (fewer if fewer suppliers exist).
    fn sample(&self, item: &str, m: usize, rng: &mut dyn RngCore) -> Vec<CandidateInfo>;

    /// Number of registered suppliers of `item`.
    fn supplier_count(&self, item: &str) -> usize;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn candidate_info_holds_identity_and_class() {
        let c = CandidateInfo::new(PeerId::new(9), PeerClass::new(3).unwrap());
        assert_eq!(c.id, PeerId::new(9));
        assert_eq!(c.class.get(), 3);
    }
}
