//! Peer lookup substrates for the `p2ps` reproduction.
//!
//! The paper's requesting peers obtain their `M` random candidate
//! supplying peers "via some peer-to-peer lookup mechanism … for example,
//! by querying a centralized directory server as in Napster, or by using a
//! distributed lookup service such as Chord" (§4.2, footnote 4). This
//! crate implements both ends of that spectrum:
//!
//! * [`Directory`] — a Napster-style centralized directory with `O(1)`
//!   uniform random candidate sampling, plus the thread-safe
//!   [`SharedDirectory`] used by the runnable node.
//! * [`chord`] — a Chord consistent-hashing ring with finger tables and
//!   `O(log n)` iterative lookup, storing the supplier list of each media
//!   item at the key's successor node.
//!
//! Both implement the [`Rendezvous`] trait, so the admission layer is
//! agnostic to which lookup service the deployment uses.
//!
//! # Examples
//!
//! ```
//! use p2ps_lookup::{Directory, Rendezvous};
//! use p2ps_core::{PeerClass, PeerId};
//! use rand::{rngs::SmallRng, SeedableRng};
//!
//! let mut dir = Directory::new();
//! for i in 0..20 {
//!     dir.register("video", PeerId::new(i), PeerClass::new(1 + (i % 4) as u8)?);
//! }
//! let mut rng = SmallRng::seed_from_u64(7);
//! let candidates = dir.sample("video", 8, &mut rng);
//! assert_eq!(candidates.len(), 8);
//! # Ok::<(), p2ps_core::Error>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chord;
mod directory;
mod rendezvous;

pub use directory::{Directory, SharedDirectory};
pub use rendezvous::{CandidateInfo, Rendezvous};
