//! Napster-style centralized directory.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::RwLock;
use rand::RngCore;

use p2ps_core::{PeerClass, PeerId};

use crate::{CandidateInfo, Rendezvous};

/// The supplier set of one media item, organized for `O(1)` registration,
/// removal and uniform sampling without replacement.
#[derive(Debug, Default, Clone)]
struct SupplierSet {
    entries: Vec<CandidateInfo>,
    index: HashMap<PeerId, usize>,
}

impl SupplierSet {
    fn insert(&mut self, info: CandidateInfo) {
        if let Some(&i) = self.index.get(&info.id) {
            self.entries[i] = info; // class update on re-registration
            return;
        }
        self.index.insert(info.id, self.entries.len());
        self.entries.push(info);
    }

    fn remove(&mut self, peer: PeerId) {
        if let Some(i) = self.index.remove(&peer) {
            let last = self.entries.len() - 1;
            self.entries.swap(i, last);
            self.entries.pop();
            if i < self.entries.len() {
                self.index.insert(self.entries[i].id, i);
            }
        }
    }

    /// Partial Fisher–Yates: uniform sample of `m` distinct entries.
    fn sample(&self, m: usize, rng: &mut dyn RngCore) -> Vec<CandidateInfo> {
        let n = self.entries.len();
        let m = m.min(n);
        let mut pool: Vec<usize> = (0..n).collect();
        let mut out = Vec::with_capacity(m);
        for i in 0..m {
            let j = i + (rng.next_u64() as usize) % (n - i);
            pool.swap(i, j);
            out.push(self.entries[pool[i]]);
        }
        out
    }
}

/// A centralized directory server mapping media items to their supplying
/// peers (the paper's Napster-style option for candidate lookup).
///
/// # Examples
///
/// ```
/// use p2ps_lookup::{Directory, Rendezvous};
/// use p2ps_core::{PeerClass, PeerId};
/// use rand::{rngs::SmallRng, SeedableRng};
///
/// let mut dir = Directory::new();
/// dir.register("video", PeerId::new(1), PeerClass::new(1)?);
/// dir.register("video", PeerId::new(2), PeerClass::new(2)?);
/// assert_eq!(dir.supplier_count("video"), 2);
/// let mut rng = SmallRng::seed_from_u64(0);
/// assert_eq!(dir.sample("video", 8, &mut rng).len(), 2);
/// dir.unregister("video", PeerId::new(1));
/// assert_eq!(dir.supplier_count("video"), 1);
/// # Ok::<(), p2ps_core::Error>(())
/// ```
#[derive(Debug, Default, Clone)]
pub struct Directory {
    items: HashMap<String, SupplierSet>,
}

impl Directory {
    /// Creates an empty directory.
    pub fn new() -> Self {
        Directory::default()
    }

    /// Names of all items with at least one supplier.
    pub fn items(&self) -> impl Iterator<Item = &str> + '_ {
        self.items
            .iter()
            .filter(|(_, s)| !s.entries.is_empty())
            .map(|(k, _)| k.as_str())
    }

    /// All suppliers of `item` (unsampled), mainly for tests and tools.
    pub fn suppliers(&self, item: &str) -> Vec<CandidateInfo> {
        self.items
            .get(item)
            .map(|s| s.entries.clone())
            .unwrap_or_default()
    }
}

impl Rendezvous for Directory {
    fn register(&mut self, item: &str, peer: PeerId, class: PeerClass) {
        self.items
            .entry(item.to_owned())
            .or_default()
            .insert(CandidateInfo::new(peer, class));
    }

    fn unregister(&mut self, item: &str, peer: PeerId) {
        if let Some(set) = self.items.get_mut(item) {
            set.remove(peer);
        }
    }

    fn sample(&self, item: &str, m: usize, rng: &mut dyn RngCore) -> Vec<CandidateInfo> {
        self.items
            .get(item)
            .map(|s| s.sample(m, rng))
            .unwrap_or_default()
    }

    fn supplier_count(&self, item: &str) -> usize {
        self.items.get(item).map(|s| s.entries.len()).unwrap_or(0)
    }
}

/// A clonable, thread-safe handle to a striped [`Directory`], used by
/// the runnable node where many peer threads talk to one directory
/// server.
///
/// Like the node-level `ShardedRegistry`, the directory is striped by
/// item hash (16 ways by default): registrations and queries touching
/// *different* items never contend on one lock — the write-heavy churn
/// case, where every completed session triggers a registration (§2's
/// self-growing property).
///
/// Item-scoped access goes through [`Rendezvous`] or
/// [`with_item`](Self::with_item)/[`with_item_mut`](Self::with_item_mut),
/// which lock only the item's stripe.
///
/// # Examples
///
/// ```
/// use p2ps_lookup::{Rendezvous, SharedDirectory};
/// use p2ps_core::{PeerClass, PeerId};
///
/// let dir = SharedDirectory::new();
/// let mut clone = dir.clone();
/// clone.register("v", PeerId::new(1), PeerClass::new(1).unwrap());
/// assert_eq!(dir.supplier_count("v"), 1);
/// assert_eq!(dir.with_item("v", |d| d.supplier_count("v")), 1);
/// assert_eq!(dir.items(), vec!["v".to_owned()]);
/// ```
#[derive(Debug, Clone)]
pub struct SharedDirectory {
    stripes: Arc<[RwLock<Directory>]>,
}

impl Default for SharedDirectory {
    fn default() -> Self {
        SharedDirectory::new()
    }
}

impl SharedDirectory {
    /// Default stripe count, matching the node's `ShardedRegistry`.
    const DEFAULT_STRIPES: usize = 16;

    /// Creates an empty shared directory with the default striping.
    pub fn new() -> Self {
        SharedDirectory::with_stripes(Self::DEFAULT_STRIPES)
    }

    /// Creates an empty shared directory striped over `stripes` locks
    /// (at least one).
    pub fn with_stripes(stripes: usize) -> Self {
        SharedDirectory {
            stripes: (0..stripes.max(1))
                .map(|_| RwLock::new(Directory::new()))
                .collect(),
        }
    }

    /// Number of stripes.
    pub fn stripe_count(&self) -> usize {
        self.stripes.len()
    }

    fn stripe(&self, item: &str) -> &RwLock<Directory> {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        item.hash(&mut h);
        &self.stripes[(h.finish() % self.stripes.len() as u64) as usize]
    }

    /// Runs `f` with read access to `item`'s stripe.
    pub fn with_item<T>(&self, item: &str, f: impl FnOnce(&Directory) -> T) -> T {
        f(&self.stripe(item).read())
    }

    /// Runs `f` with write access to `item`'s stripe.
    pub fn with_item_mut<T>(&self, item: &str, f: impl FnOnce(&mut Directory) -> T) -> T {
        f(&mut self.stripe(item).write())
    }

    /// Names of all items with at least one supplier, across every
    /// stripe (sorted, since stripe order is hash order).
    pub fn items(&self) -> Vec<String> {
        let mut all: Vec<String> = self
            .stripes
            .iter()
            .flat_map(|s| s.read().items().map(str::to_owned).collect::<Vec<_>>())
            .collect();
        all.sort_unstable();
        all
    }
}

impl Rendezvous for SharedDirectory {
    fn register(&mut self, item: &str, peer: PeerId, class: PeerClass) {
        self.stripe(item).write().register(item, peer, class);
    }

    fn unregister(&mut self, item: &str, peer: PeerId) {
        self.stripe(item).write().unregister(item, peer);
    }

    fn sample(&self, item: &str, m: usize, rng: &mut dyn RngCore) -> Vec<CandidateInfo> {
        self.stripe(item).read().sample(item, m, rng)
    }

    fn supplier_count(&self, item: &str) -> usize {
        self.stripe(item).read().supplier_count(item)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn class(k: u8) -> PeerClass {
        PeerClass::new(k).unwrap()
    }

    fn populated(n: u64) -> Directory {
        let mut d = Directory::new();
        for i in 0..n {
            d.register("v", PeerId::new(i), class(1 + (i % 4) as u8));
        }
        d
    }

    #[test]
    fn register_unregister_counts() {
        let mut d = populated(10);
        assert_eq!(d.supplier_count("v"), 10);
        assert_eq!(d.supplier_count("unknown"), 0);
        d.unregister("v", PeerId::new(3));
        assert_eq!(d.supplier_count("v"), 9);
        d.unregister("v", PeerId::new(3)); // idempotent
        assert_eq!(d.supplier_count("v"), 9);
        d.unregister("unknown", PeerId::new(3)); // no-op
    }

    #[test]
    fn reregistration_updates_class() {
        let mut d = Directory::new();
        d.register("v", PeerId::new(1), class(4));
        d.register("v", PeerId::new(1), class(2));
        assert_eq!(d.supplier_count("v"), 1);
        assert_eq!(d.suppliers("v")[0].class, class(2));
    }

    #[test]
    fn sample_returns_distinct_candidates() {
        let d = populated(50);
        let mut rng = SmallRng::seed_from_u64(1);
        let s = d.sample("v", 8, &mut rng);
        assert_eq!(s.len(), 8);
        let mut ids: Vec<u64> = s.iter().map(|c| c.id.get()).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 8, "sampled candidates must be distinct");
    }

    #[test]
    fn sample_caps_at_population() {
        let d = populated(3);
        let mut rng = SmallRng::seed_from_u64(1);
        assert_eq!(d.sample("v", 8, &mut rng).len(), 3);
        assert_eq!(d.sample("v", 0, &mut rng).len(), 0);
        assert_eq!(d.sample("none", 8, &mut rng).len(), 0);
    }

    #[test]
    fn sampling_is_roughly_uniform() {
        let d = populated(10);
        let mut rng = SmallRng::seed_from_u64(42);
        let mut hits = [0u32; 10];
        for _ in 0..10_000 {
            for c in d.sample("v", 1, &mut rng) {
                hits[c.id.get() as usize] += 1;
            }
        }
        for (i, &h) in hits.iter().enumerate() {
            assert!(
                (700..1300).contains(&h),
                "peer {i} sampled {h} times out of 10000"
            );
        }
    }

    #[test]
    fn removal_keeps_sampling_consistent() {
        let mut d = populated(5);
        d.unregister("v", PeerId::new(0)); // exercises swap-remove re-index
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..100 {
            for c in d.sample("v", 3, &mut rng) {
                assert_ne!(c.id, PeerId::new(0));
            }
        }
    }

    #[test]
    fn items_lists_active_items() {
        let mut d = Directory::new();
        d.register("a", PeerId::new(1), class(1));
        d.register("b", PeerId::new(2), class(1));
        d.unregister("b", PeerId::new(2));
        let items: Vec<&str> = d.items().collect();
        assert_eq!(items, vec!["a"]);
    }

    #[test]
    fn shared_directory_round_trip() {
        let dir = SharedDirectory::new();
        let mut writer = dir.clone();
        writer.register("v", PeerId::new(1), class(1));
        assert_eq!(dir.supplier_count("v"), 1);
        let mut rng = SmallRng::seed_from_u64(0);
        assert_eq!(dir.sample("v", 4, &mut rng).len(), 1);
        writer.unregister("v", PeerId::new(1));
        assert_eq!(dir.supplier_count("v"), 0);
    }

    #[test]
    fn shared_directory_concurrent_access() {
        let dir = SharedDirectory::new();
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let mut d = dir.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..100 {
                    d.register("v", PeerId::new(t * 100 + i), class(1));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(dir.supplier_count("v"), 400);
    }

    #[test]
    fn shared_directory_stripes_by_item() {
        let mut dir = SharedDirectory::with_stripes(4);
        assert_eq!(dir.stripe_count(), 4);
        assert!(SharedDirectory::with_stripes(0).stripe_count() >= 1);
        for i in 0..64u64 {
            dir.register(&format!("item-{i}"), PeerId::new(i), class(1));
        }
        // Every item is findable through its own stripe, and the
        // aggregate view sees all of them.
        let mut rng = SmallRng::seed_from_u64(5);
        for i in 0..64u64 {
            let name = format!("item-{i}");
            assert_eq!(dir.supplier_count(&name), 1);
            assert_eq!(dir.sample(&name, 8, &mut rng).len(), 1);
            assert_eq!(dir.with_item(&name, |d| d.supplier_count(&name)), 1);
        }
        assert_eq!(dir.items().len(), 64);
        // Items actually spread across stripes (hash, not one bucket).
        let occupancy = dir
            .stripes
            .iter()
            .filter(|s| s.read().items().next().is_some())
            .count();
        assert!(occupancy >= 2, "64 items all hashed into one stripe?");
    }

    #[test]
    fn shared_directory_concurrent_items_across_stripes() {
        let dir = SharedDirectory::new();
        let mut handles = Vec::new();
        for t in 0..8u64 {
            let mut d = dir.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..50 {
                    d.register(&format!("item-{t}"), PeerId::new(t * 100 + i), class(1));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        for t in 0..8u64 {
            assert_eq!(dir.supplier_count(&format!("item-{t}")), 50);
        }
        assert_eq!(dir.items().len(), 8);
    }

    #[test]
    fn shared_directory_item_scoped_mutation() {
        let dir = SharedDirectory::new();
        dir.with_item_mut("x", |d| d.register("x", PeerId::new(7), class(2)));
        assert_eq!(dir.supplier_count("x"), 1);
        dir.with_item_mut("x", |d| d.unregister("x", PeerId::new(7)));
        assert_eq!(dir.supplier_count("x"), 0);
        assert!(dir.items().is_empty());
    }
}
