//! Identifiers on the Chord circle.

use p2ps_core::PeerId;
use serde::{Deserialize, Serialize};

/// A position on the Chord identifier circle (64-bit identifier space).
///
/// Both nodes and keys hash onto the same circle; a key is owned by its
/// *successor* — the first node clockwise at or after the key.
///
/// # Examples
///
/// ```
/// use p2ps_lookup::chord::ChordId;
///
/// let a = ChordId::from_raw(10);
/// let b = ChordId::from_raw(20);
/// assert!(ChordId::from_raw(15).in_half_open(a, b));  // (10, 20]
/// assert!(!ChordId::from_raw(10).in_half_open(a, b));
/// assert!(ChordId::from_raw(20).in_half_open(a, b));
/// // Wrap-around interval (20, 10]:
/// assert!(ChordId::from_raw(5).in_half_open(b, a));
/// assert!(ChordId::from_raw(25).in_half_open(b, a));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ChordId(u64);

impl ChordId {
    /// Number of bits of the identifier space (finger-table size).
    pub const BITS: u32 = 64;

    /// Wraps a raw identifier.
    pub const fn from_raw(v: u64) -> Self {
        ChordId(v)
    }

    /// The raw identifier.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Hashes a media item name onto the circle (FNV-1a then avalanche).
    pub fn of_item(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.as_bytes() {
            h = (h ^ *b as u64).wrapping_mul(0x1000_0000_01b3);
        }
        ChordId(splitmix(h))
    }

    /// Hashes a peer identity onto the circle.
    pub fn of_peer(peer: PeerId) -> Self {
        ChordId(splitmix(peer.get() ^ 0x6a09_e667_f3bc_c909))
    }

    /// `self + 2^k` on the circle (finger start positions).
    pub const fn finger_start(self, k: u32) -> Self {
        ChordId(self.0.wrapping_add(1u64 << k))
    }

    /// Whether `self` lies in the half-open circular interval `(from, to]`.
    /// An empty interval (`from == to`) denotes the whole circle, matching
    /// the Chord paper's convention for single-node rings.
    pub fn in_half_open(self, from: ChordId, to: ChordId) -> bool {
        if from == to {
            return true;
        }
        if from.0 < to.0 {
            from.0 < self.0 && self.0 <= to.0
        } else {
            self.0 > from.0 || self.0 <= to.0
        }
    }

    /// Whether `self` lies in the open circular interval `(from, to)`.
    pub fn in_open(self, from: ChordId, to: ChordId) -> bool {
        if from == to {
            return self != from;
        }
        if from.0 < to.0 {
            from.0 < self.0 && self.0 < to.0
        } else {
            self.0 > from.0 || self.0 < to.0
        }
    }
}

impl std::fmt::Display for ChordId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// splitmix64 finalizer: a cheap avalanche so sequential peer ids spread
/// uniformly over the circle.
fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interval_membership_no_wrap() {
        let a = ChordId::from_raw(100);
        let b = ChordId::from_raw(200);
        assert!(ChordId::from_raw(150).in_half_open(a, b));
        assert!(ChordId::from_raw(200).in_half_open(a, b));
        assert!(!ChordId::from_raw(100).in_half_open(a, b));
        assert!(!ChordId::from_raw(250).in_half_open(a, b));
        assert!(ChordId::from_raw(150).in_open(a, b));
        assert!(!ChordId::from_raw(200).in_open(a, b));
    }

    #[test]
    fn interval_membership_wraps() {
        let a = ChordId::from_raw(u64::MAX - 10);
        let b = ChordId::from_raw(10);
        assert!(ChordId::from_raw(u64::MAX).in_half_open(a, b));
        assert!(ChordId::from_raw(0).in_half_open(a, b));
        assert!(ChordId::from_raw(10).in_half_open(a, b));
        assert!(!ChordId::from_raw(11).in_half_open(a, b));
        assert!(!ChordId::from_raw(500).in_open(a, b));
    }

    #[test]
    fn degenerate_interval_is_full_circle() {
        let a = ChordId::from_raw(42);
        assert!(ChordId::from_raw(0).in_half_open(a, a));
        assert!(ChordId::from_raw(42).in_half_open(a, a));
        assert!(!ChordId::from_raw(42).in_open(a, a));
        assert!(ChordId::from_raw(43).in_open(a, a));
    }

    #[test]
    fn finger_starts_wrap() {
        let id = ChordId::from_raw(u64::MAX);
        assert_eq!(id.finger_start(0).raw(), 0);
        assert_eq!(ChordId::from_raw(0).finger_start(63).raw(), 1 << 63);
    }

    #[test]
    fn hashes_spread() {
        // Sequential peers must not land sequentially on the circle.
        let a = ChordId::of_peer(PeerId::new(1)).raw();
        let b = ChordId::of_peer(PeerId::new(2)).raw();
        assert!(a.abs_diff(b) > 1 << 32);
        assert_ne!(ChordId::of_item("x"), ChordId::of_item("y"));
        assert_eq!(ChordId::of_item("x"), ChordId::of_item("x"));
    }

    #[test]
    fn display_is_hex() {
        assert_eq!(format!("{}", ChordId::from_raw(255)), "00000000000000ff");
    }
}
