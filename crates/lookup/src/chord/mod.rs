//! A Chord distributed lookup ring (Stoica et al., SIGCOMM 2001).
//!
//! The paper cites Chord as the distributed alternative to a centralized
//! directory for discovering candidate supplying peers (§4.2, footnote 4),
//! so this crate ships a faithful single-process Chord implementation:
//! consistent hashing onto a 64-bit identifier circle, per-node finger
//! tables, iterative `O(log n)` lookup that *only* uses finger tables, and
//! key migration on node join/leave. Media items hash to keys; the
//! supplier list of an item lives at the key's successor node.
//!
//! "Single-process" means the ring topology lives in one address space
//! (nodes do not exchange real network messages), but every lookup walks
//! the ring exactly as a distributed deployment would — the hop counts
//! measured in the benchmarks are the message counts a real deployment
//! would pay.
//!
//! # Examples
//!
//! ```
//! use p2ps_lookup::chord::ChordRing;
//! use p2ps_lookup::Rendezvous;
//! use p2ps_core::{PeerClass, PeerId};
//! use rand::{rngs::SmallRng, SeedableRng};
//!
//! let mut ring = ChordRing::new();
//! for i in 0..32 {
//!     ring.join(PeerId::new(i));
//! }
//! ring.register("video", PeerId::new(3), PeerClass::new(2)?);
//! let mut rng = SmallRng::seed_from_u64(1);
//! let found = ring.sample("video", 8, &mut rng);
//! assert_eq!(found.len(), 1);
//! assert_eq!(found[0].id, PeerId::new(3));
//! # Ok::<(), p2ps_core::Error>(())
//! ```

mod id;
mod ring;

pub use id::ChordId;
pub use ring::{ChordRing, LookupResult};
