//! The Chord ring: nodes, finger tables, lookup and key storage.

use std::collections::{BTreeMap, HashMap};

use rand::RngCore;

use p2ps_core::{PeerClass, PeerId};

use crate::{CandidateInfo, Rendezvous};

use super::ChordId;

/// One Chord node: identity, routing state and the keys it stores.
#[derive(Debug, Clone)]
struct Node {
    peer: PeerId,
    /// `fingers[k]` = the node that succeeds `id + 2^k` (node chord-id).
    fingers: Vec<ChordId>,
    successor: ChordId,
    predecessor: ChordId,
    /// item-key → suppliers of that item.
    store: HashMap<u64, Vec<CandidateInfo>>,
}

/// Result of an iterative Chord lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LookupResult {
    /// The node owning the key (the key's successor).
    pub owner: ChordId,
    /// Number of routing hops taken (0 when the first node already owns
    /// the key).
    pub hops: u32,
}

/// A complete Chord ring in one address space.
///
/// Topology maintenance (`join` / `leave`) immediately re-establishes the
/// converged state that Chord's periodic `stabilize` / `fix_fingers`
/// protocols reach; lookups then route **only** through finger tables, so
/// hop counts match a converged distributed deployment. Keys migrate to
/// their new successor on membership changes, as in the Chord paper.
#[derive(Debug, Clone, Default)]
pub struct ChordRing {
    nodes: BTreeMap<u64, Node>,
}

impl ChordRing {
    /// Creates an empty ring.
    pub fn new() -> Self {
        ChordRing::default()
    }

    /// Number of nodes in the ring.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the ring has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The chord-id of every node, ascending.
    pub fn node_ids(&self) -> impl Iterator<Item = ChordId> + '_ {
        self.nodes.keys().map(|&k| ChordId::from_raw(k))
    }

    /// Ground-truth successor of `id` on the circle (first node clockwise
    /// at or after `id`). Used for topology maintenance, never for routing.
    fn successor_of(&self, id: ChordId) -> Option<ChordId> {
        self.nodes
            .range(id.raw()..)
            .next()
            .or_else(|| self.nodes.iter().next())
            .map(|(&k, _)| ChordId::from_raw(k))
    }

    /// Ground-truth predecessor of `id` (first node strictly before `id`).
    fn predecessor_of(&self, id: ChordId) -> Option<ChordId> {
        self.nodes
            .range(..id.raw())
            .next_back()
            .or_else(|| self.nodes.iter().next_back())
            .map(|(&k, _)| ChordId::from_raw(k))
    }

    /// Adds `peer` to the ring, rebuilding the affected routing state and
    /// migrating the keys that now belong to it. Returns the node's
    /// chord-id. Joining twice is a no-op.
    pub fn join(&mut self, peer: PeerId) -> ChordId {
        let id = ChordId::of_peer(peer);
        if self.nodes.contains_key(&id.raw()) {
            return id;
        }
        self.nodes.insert(
            id.raw(),
            Node {
                peer,
                fingers: vec![id; ChordId::BITS as usize],
                successor: id,
                predecessor: id,
                store: HashMap::new(),
            },
        );
        // Migrate keys in (predecessor, id] from the successor.
        let succ = self.successor_of(id.finger_start(0)).expect("non-empty");
        if succ != id {
            let pred = self.predecessor_of(id).expect("non-empty");
            let succ_node = self.nodes.get_mut(&succ.raw()).expect("exists");
            let mut moved = Vec::new();
            succ_node.store.retain(|&key, suppliers| {
                if ChordId::from_raw(key).in_half_open(pred, id) {
                    moved.push((key, std::mem::take(suppliers)));
                    false
                } else {
                    true
                }
            });
            let new_node = self.nodes.get_mut(&id.raw()).expect("just inserted");
            new_node.store.extend(moved);
        }
        self.refresh_routing();
        id
    }

    /// Removes `peer` from the ring, handing its keys to its successor.
    /// Unknown peers are ignored.
    pub fn leave(&mut self, peer: PeerId) {
        let id = ChordId::of_peer(peer);
        let Some(node) = self.nodes.remove(&id.raw()) else {
            return;
        };
        if let Some(succ) = self.successor_of(id) {
            let succ_node = self.nodes.get_mut(&succ.raw()).expect("exists");
            for (key, mut suppliers) in node.store {
                succ_node
                    .store
                    .entry(key)
                    .or_default()
                    .append(&mut suppliers);
            }
        }
        self.refresh_routing();
    }

    /// Recomputes successor/predecessor pointers and finger tables for all
    /// nodes — the converged fixpoint of Chord's `stabilize` +
    /// `fix_fingers` maintenance.
    fn refresh_routing(&mut self) {
        let ids: Vec<u64> = self.nodes.keys().copied().collect();
        for &raw in &ids {
            let id = ChordId::from_raw(raw);
            let successor = self
                .successor_of(id.finger_start(0))
                .expect("ring is non-empty");
            let predecessor = self.predecessor_of(id).expect("ring is non-empty");
            let fingers: Vec<ChordId> = (0..ChordId::BITS)
                .map(|k| {
                    self.successor_of(id.finger_start(k))
                        .expect("ring is non-empty")
                })
                .collect();
            let node = self.nodes.get_mut(&raw).expect("iterating own keys");
            node.successor = successor;
            node.predecessor = predecessor;
            node.fingers = fingers;
        }
    }

    /// Iterative lookup of `key` starting at node `from`, routing only
    /// through finger tables (Chord's `find_successor`).
    ///
    /// # Panics
    ///
    /// Panics if `from` is not a node of the ring.
    pub fn lookup_from(&self, from: ChordId, key: ChordId) -> LookupResult {
        let mut current = from;
        let mut hops = 0u32;
        loop {
            let node = self
                .nodes
                .get(&current.raw())
                .expect("lookup must start at a ring node");
            if key.in_half_open(current, node.successor) {
                if node.successor == current {
                    return LookupResult {
                        owner: current,
                        hops,
                    };
                }
                return LookupResult {
                    owner: node.successor,
                    hops: hops + 1,
                };
            }
            // closest preceding finger
            let mut next = node.successor;
            for &f in node.fingers.iter().rev() {
                if f.in_open(current, key) {
                    next = f;
                    break;
                }
            }
            if next == current {
                return LookupResult {
                    owner: current,
                    hops,
                };
            }
            current = next;
            hops += 1;
        }
    }

    /// Looks `key` up from an arbitrary (first) node — the entry point a
    /// client without ring knowledge would use.
    ///
    /// # Panics
    ///
    /// Panics if the ring is empty.
    pub fn lookup(&self, key: ChordId) -> LookupResult {
        let first = ChordId::from_raw(*self.nodes.keys().next().expect("ring is empty"));
        self.lookup_from(first, key)
    }

    /// The peer identity of the ring node with chord-id `id`.
    pub fn peer_of(&self, id: ChordId) -> Option<PeerId> {
        self.nodes.get(&id.raw()).map(|n| n.peer)
    }

    fn owner_store_mut(&mut self, item: &str) -> Option<&mut Vec<CandidateInfo>> {
        if self.nodes.is_empty() {
            return None;
        }
        let key = ChordId::of_item(item);
        let owner = self.lookup(key).owner;
        Some(
            self.nodes
                .get_mut(&owner.raw())
                .expect("owner is a ring node")
                .store
                .entry(key.raw())
                .or_default(),
        )
    }
}

impl Rendezvous for ChordRing {
    fn register(&mut self, item: &str, peer: PeerId, class: PeerClass) {
        let Some(store) = self.owner_store_mut(item) else {
            return;
        };
        match store.iter_mut().find(|c| c.id == peer) {
            Some(existing) => existing.class = class,
            None => store.push(CandidateInfo::new(peer, class)),
        }
    }

    fn unregister(&mut self, item: &str, peer: PeerId) {
        if let Some(store) = self.owner_store_mut(item) {
            store.retain(|c| c.id != peer);
        }
    }

    fn sample(&self, item: &str, m: usize, rng: &mut dyn RngCore) -> Vec<CandidateInfo> {
        if self.nodes.is_empty() {
            return Vec::new();
        }
        let key = ChordId::of_item(item);
        let owner = self.lookup(key).owner;
        let Some(all) = self
            .nodes
            .get(&owner.raw())
            .and_then(|n| n.store.get(&key.raw()))
        else {
            return Vec::new();
        };
        let n = all.len();
        let m = m.min(n);
        let mut pool: Vec<usize> = (0..n).collect();
        let mut out = Vec::with_capacity(m);
        for i in 0..m {
            let j = i + (rng.next_u64() as usize) % (n - i);
            pool.swap(i, j);
            out.push(all[pool[i]]);
        }
        out
    }

    fn supplier_count(&self, item: &str) -> usize {
        if self.nodes.is_empty() {
            return 0;
        }
        let key = ChordId::of_item(item);
        let owner = self.lookup(key).owner;
        self.nodes
            .get(&owner.raw())
            .and_then(|n| n.store.get(&key.raw()))
            .map(Vec::len)
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn ring(n: u64) -> ChordRing {
        let mut r = ChordRing::new();
        for i in 0..n {
            r.join(PeerId::new(i));
        }
        r
    }

    fn class(k: u8) -> PeerClass {
        PeerClass::new(k).unwrap()
    }

    #[test]
    fn empty_and_single_node() {
        let mut r = ChordRing::new();
        assert!(r.is_empty());
        let id = r.join(PeerId::new(1));
        assert_eq!(r.len(), 1);
        let res = r.lookup(ChordId::of_item("anything"));
        assert_eq!(res.owner, id);
        assert_eq!(res.hops, 0);
    }

    #[test]
    fn rejoin_is_idempotent() {
        let mut r = ring(5);
        let before = r.len();
        r.join(PeerId::new(3));
        assert_eq!(r.len(), before);
    }

    #[test]
    fn lookup_owner_matches_ground_truth_successor() {
        let r = ring(64);
        for probe in 0..200u64 {
            let key = ChordId::of_item(&format!("item-{probe}"));
            let expected = r.successor_of(key).unwrap();
            for start in r.node_ids().step_by(17) {
                let res = r.lookup_from(start, key);
                assert_eq!(res.owner, expected, "key {key} from {start}");
            }
        }
    }

    #[test]
    fn lookup_hops_are_logarithmic() {
        let r = ring(256);
        let mut worst = 0;
        let mut total = 0u32;
        let mut count = 0u32;
        for probe in 0..200u64 {
            let key = ChordId::of_item(&format!("probe-{probe}"));
            for start in r.node_ids().step_by(31) {
                let res = r.lookup_from(start, key);
                worst = worst.max(res.hops);
                total += res.hops;
                count += 1;
            }
        }
        let avg = total as f64 / count as f64;
        // log2(256) = 8; Chord guarantees O(log n) with ~1/2 log2 n average.
        assert!(avg <= 8.0, "average hops {avg} too high");
        assert!(worst <= 16, "worst-case hops {worst} too high");
    }

    #[test]
    fn register_sample_unregister_round_trip() {
        let mut r = ring(32);
        r.register("video", PeerId::new(3), class(2));
        r.register("video", PeerId::new(4), class(1));
        assert_eq!(r.supplier_count("video"), 2);
        let mut rng = SmallRng::seed_from_u64(0);
        let sampled = r.sample("video", 8, &mut rng);
        assert_eq!(sampled.len(), 2);
        r.unregister("video", PeerId::new(3));
        assert_eq!(r.supplier_count("video"), 1);
        assert_eq!(r.sample("video", 8, &mut rng)[0].id, PeerId::new(4));
    }

    #[test]
    fn reregistration_updates_class() {
        let mut r = ring(8);
        r.register("v", PeerId::new(1), class(4));
        r.register("v", PeerId::new(1), class(1));
        assert_eq!(r.supplier_count("v"), 1);
        let mut rng = SmallRng::seed_from_u64(0);
        assert_eq!(r.sample("v", 1, &mut rng)[0].class, class(1));
    }

    #[test]
    fn keys_survive_owner_churn() {
        let mut r = ring(32);
        r.register("video", PeerId::new(3), class(2));
        let owner = r.lookup(ChordId::of_item("video")).owner;
        let owner_peer = r.peer_of(owner).unwrap();
        // The owner leaves; the key must move to the new successor.
        r.leave(owner_peer);
        assert_eq!(r.supplier_count("video"), 1);
        // Many joins later the key is still reachable.
        for i in 100..164 {
            r.join(PeerId::new(i));
        }
        assert_eq!(r.supplier_count("video"), 1);
    }

    #[test]
    fn leave_of_unknown_peer_is_ignored() {
        let mut r = ring(4);
        r.leave(PeerId::new(999));
        assert_eq!(r.len(), 4);
    }

    #[test]
    fn many_items_distribute_across_nodes() {
        let mut r = ring(64);
        for i in 0..200u64 {
            r.register(&format!("item-{i}"), PeerId::new(i), class(1));
        }
        // Count distinct owner nodes: consistent hashing must spread items.
        let mut owners: Vec<u64> = (0..200u64)
            .map(|i| r.lookup(ChordId::of_item(&format!("item-{i}"))).owner.raw())
            .collect();
        owners.sort_unstable();
        owners.dedup();
        assert!(
            owners.len() > 30,
            "200 items landed on only {} of 64 nodes",
            owners.len()
        );
    }

    #[test]
    fn operations_on_empty_ring_are_safe() {
        let mut r = ChordRing::new();
        r.register("v", PeerId::new(1), class(1));
        r.unregister("v", PeerId::new(1));
        let mut rng = SmallRng::seed_from_u64(0);
        assert!(r.sample("v", 3, &mut rng).is_empty());
        assert_eq!(r.supplier_count("v"), 0);
    }
}
