//! Sans-io framing: incremental decode and queued encode, no transport.
//!
//! [`FrameDecoder`] and [`FrameEncoder`] hold the *protocol* half of a
//! connection — byte accumulation, frame boundaries, zero-copy payload
//! views — while the caller owns the *transport* half (blocking sockets,
//! a nonblocking reactor, an in-memory test harness). The blocking
//! [`read_message`](crate::read_message) / [`write_message`](crate::write_message)
//! helpers are thin transport shims over these same types, so every I/O
//! style speaks byte-identical wire format.
//!
//! ```text
//!   bytes in ──▶ FrameDecoder::feed ──▶ poll ──▶ Message
//!   Message ──▶ FrameEncoder::push ──▶ pop_chunk ──▶ bytes out
//! ```
//!
//! # Examples
//!
//! Drive a decoder with arbitrarily fragmented input:
//!
//! ```
//! use p2ps_proto::{FrameDecoder, FrameEncoder, Message};
//!
//! let msg = Message::Release { session: 7 };
//! let mut enc = FrameEncoder::new();
//! enc.push(&msg);
//! let mut dec = FrameDecoder::new();
//! while let Some(chunk) = enc.pop_chunk() {
//!     for byte in chunk.iter() {
//!         dec.feed(&[*byte]); // one byte at a time
//!     }
//! }
//! assert_eq!(dec.poll()?, Some(msg));
//! # Ok::<(), p2ps_proto::DecodeError>(())
//! ```

use std::io::{Read, Write};

use bytes::{Buf, Bytes, BytesMut, BytesPool};

use crate::codec::{complete_frame_len, decode_whole_body, encode_frame};
use crate::{ChunkQueue, DecodeError, Message, MAX_FRAME_LEN};

/// Incremental frame decoder: feed bytes in any fragmentation, poll
/// complete [`Message`]s out.
///
/// The decoder owns the connection's read accumulator. Decoded
/// `SegmentData` payloads are O(1) shared views of one per-frame
/// allocation, never copies of the payload bytes (the PR 2 zero-copy
/// property, preserved through the sans-io split).
///
/// Frame buffers are drawn from a small recycling [`BytesPool`]: once a
/// connection has warmed up, decoding a frame whose payload the consumer
/// drops (or copies out) performs **zero** heap allocations — the
/// accumulator keeps its capacity across frames and the pool reuses the
/// same frame allocation in place. Payload views retained long-term (a
/// reassembling session holds its segments) simply pin their allocation
/// until dropped; the pool rotates past them.
#[derive(Debug)]
pub struct FrameDecoder {
    buf: BytesMut,
    pool: BytesPool,
    /// True while every buffered byte was deposited by
    /// [`fill_from`](Self::fill_from) (the blocking exact-read shape):
    /// only then may [`poll`](Self::poll) donate the whole accumulator
    /// as the frame allocation. A reactor-fed accumulator must keep its
    /// buffer across frames, whatever its capacity happens to be.
    via_fill: bool,
}

impl Default for FrameDecoder {
    fn default() -> Self {
        FrameDecoder {
            buf: BytesMut::new(),
            pool: BytesPool::new(),
            via_fill: true,
        }
    }
}

impl FrameDecoder {
    /// An empty decoder.
    pub fn new() -> Self {
        FrameDecoder::default()
    }

    /// Appends raw bytes from the transport to the accumulator.
    pub fn feed(&mut self, bytes: &[u8]) {
        self.via_fill = false;
        self.buf.extend_from_slice(bytes);
    }

    /// Attempts to decode the next complete frame.
    ///
    /// Returns `Ok(None)` when more bytes are needed ([`feed`](Self::feed)
    /// and retry; [`bytes_needed`](Self::bytes_needed) says how many).
    ///
    /// # Errors
    ///
    /// Any [`DecodeError`]; the stream is corrupt and the connection
    /// should be dropped.
    pub fn poll(&mut self) -> Result<Option<Message>, DecodeError> {
        let Some(len) = complete_frame_len(&self.buf)? else {
            return Ok(None);
        };
        // Exactly-one-frame accumulator deposited by fill_from (the
        // blocking exact-read path): donate the allocation outright —
        // zero copies, however large the frame.
        if self.via_fill && self.buf.len() == 4 + len {
            let mut whole = std::mem::take(&mut self.buf).freeze();
            whole.advance(4);
            return decode_whole_body(whole).map(Some);
        }
        // Steady reactor path: one copy of the frame out of the
        // accumulator into a recycled pool allocation — no allocation
        // once the pool is warm — then O(1) views for every field.
        Buf::advance(&mut self.buf, 4);
        let frame = self.pool.copy_from_slice(&self.buf[..len]);
        Buf::advance(&mut self.buf, len);
        if self.buf.is_empty() {
            self.via_fill = true; // empty again: next fill_from qualifies
        }
        decode_whole_body(frame).map(Some)
    }

    /// Minimum number of additional bytes that must be fed before
    /// [`poll`](Self::poll) can possibly return a frame.
    ///
    /// Meaningful after `poll` returned `Ok(None)`: a blocking caller can
    /// `read_exact` exactly this many bytes and never consume bytes
    /// belonging to a later read from the same stream.
    pub fn bytes_needed(&self) -> usize {
        if self.buf.len() < 4 {
            return 4 - self.buf.len();
        }
        let len = u32::from_le_bytes([self.buf[0], self.buf[1], self.buf[2], self.buf[3]]) as usize;
        // An oversized prefix is an error poll() reports without further
        // input; claim one byte so callers that read first never block
        // forever waiting for nothing.
        (4 + len.min(MAX_FRAME_LEN))
            .saturating_sub(self.buf.len())
            .max(1)
    }

    /// Reads exactly `n` bytes from `r` straight into the accumulator —
    /// no intermediate scratch buffer, one `read_exact` worth of
    /// syscalls. Combined with [`bytes_needed`](Self::bytes_needed), a
    /// blocking caller receives a whole frame (however large) in two
    /// reads and one kernel-to-accumulator copy.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors; the accumulator is rolled back to its
    /// previous length, leaving the decoder state unchanged.
    pub fn fill_from<R: Read>(&mut self, r: &mut R, n: usize) -> std::io::Result<()> {
        let old_len = self.buf.len();
        self.buf.resize(old_len + n, 0);
        if let Err(e) = r.read_exact(&mut self.buf[old_len..]) {
            self.buf.resize(old_len, 0);
            return Err(e);
        }
        Ok(())
    }

    /// Bytes currently buffered but not yet decoded.
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }
}

/// Queued frame encoder: push [`Message`]s, drain ready [`Bytes`] chunks.
///
/// Small messages become one owned chunk. `SegmentData` — the serving hot
/// path — becomes a fixed 25-byte header chunk followed by the payload
/// *view itself*: the payload bytes are never copied into a frame buffer,
/// so a supplier serving the same segment to a thousand sessions queues a
/// thousand views of one allocation.
#[derive(Debug, Default)]
pub struct FrameEncoder {
    queue: ChunkQueue,
}

impl FrameEncoder {
    /// An empty encoder.
    pub fn new() -> Self {
        FrameEncoder::default()
    }

    /// Encodes `msg` into its wire chunks without queueing them: the
    /// header-or-whole-frame chunk, plus the zero-copy payload view for
    /// `SegmentData`.
    ///
    /// The concatenation of the returned chunks is byte-identical to
    /// [`encode_frame`](crate::encode_frame) (pinned by tests).
    pub fn frame(msg: &Message) -> (Bytes, Option<Bytes>) {
        if let Message::SegmentData {
            session,
            index,
            payload,
        } = msg
        {
            // Layout must match encode_frame exactly:
            // len | tag | session | index | payload_len | payload.
            let body_len = (1 + 8 + 8 + 4 + payload.len()) as u32;
            let mut head = Vec::with_capacity(25);
            head.extend_from_slice(&body_len.to_le_bytes());
            head.push(msg.tag());
            head.extend_from_slice(&session.to_le_bytes());
            head.extend_from_slice(&index.to_le_bytes());
            head.extend_from_slice(&(payload.len() as u32).to_le_bytes());
            (Bytes::from(head), Some(payload.clone()))
        } else {
            let mut buf = BytesMut::new();
            encode_frame(msg, &mut buf);
            (buf.freeze(), None)
        }
    }

    /// Queues one message's frame chunks for draining.
    pub fn push(&mut self, msg: &Message) {
        let (head, payload) = Self::frame(msg);
        self.queue.push(head);
        if let Some(p) = payload {
            self.queue.push(p);
        }
    }

    /// Removes and returns the next ready chunk, front first.
    pub fn pop_chunk(&mut self) -> Option<Bytes> {
        self.queue.pop()
    }

    /// Total bytes queued across all pending chunks.
    pub fn pending_bytes(&self) -> usize {
        self.queue.pending_bytes()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Marks `n` queued bytes as written, consuming chunks front first.
    /// A reactor that gathered the front chunks into a partial
    /// `write_vectored` calls this with the short count (see
    /// [`ChunkQueue::advance`], which owns the bookkeeping).
    ///
    /// # Panics
    ///
    /// Panics if `n` exceeds [`pending_bytes`](Self::pending_bytes).
    pub fn advance(&mut self, n: usize) {
        self.queue.advance(n);
    }

    /// Drains every queued chunk into a blocking writer with vectored
    /// writes (a `SegmentData` header and its payload leave in one
    /// `writev`, never re-buffered) — [`ChunkQueue::write_to`].
    ///
    /// # Errors
    ///
    /// Propagates I/O errors; only bytes the writer actually accepted are
    /// consumed, so the unwritten tail stays queued.
    pub fn write_to<W: Write>(&mut self, w: W) -> std::io::Result<()> {
        self.queue.write_to(w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CandidateRecord;
    use p2ps_core::{PeerClass, PeerId};

    fn sample_messages() -> Vec<Message> {
        vec![
            Message::Register {
                item: "video".into(),
                peer: PeerId::new(7),
                class: PeerClass::new(2).unwrap(),
                port: 9000,
            },
            Message::Candidates {
                list: vec![CandidateRecord {
                    id: PeerId::new(1),
                    class: PeerClass::new(1).unwrap(),
                    port: 9001,
                }],
            },
            Message::SegmentData {
                session: 99,
                index: 42,
                payload: Bytes::from(vec![0xab; 2_048]),
            },
            Message::SegmentData {
                session: 1,
                index: 2,
                payload: Bytes::new(), // empty payload is legal
            },
            Message::EndSession { session: 99 },
        ]
    }

    #[test]
    fn encoder_chunks_match_encode_frame() {
        for msg in sample_messages() {
            let mut enc = FrameEncoder::new();
            enc.push(&msg);
            let mut wire = Vec::new();
            while let Some(c) = enc.pop_chunk() {
                wire.extend_from_slice(&c);
            }
            let mut framed = BytesMut::new();
            encode_frame(&msg, &mut framed);
            assert_eq!(&wire[..], &framed[..], "chunks differ for {}", msg.name());
        }
    }

    #[test]
    fn segment_payload_chunk_is_a_view_not_a_copy() {
        let payload = Bytes::from(vec![0x5a; 4 * 1024]);
        let msg = Message::SegmentData {
            session: 1,
            index: 2,
            payload: payload.clone(),
        };
        let (_, tail) = FrameEncoder::frame(&msg);
        let tail = tail.expect("segment data has a payload chunk");
        assert_eq!(
            tail.as_ptr(),
            payload.as_ptr(),
            "payload must not be copied"
        );
    }

    #[test]
    fn decoder_handles_any_fragmentation() {
        let msgs = sample_messages();
        let mut wire = Vec::new();
        for m in &msgs {
            let mut enc = FrameEncoder::new();
            enc.push(m);
            while let Some(c) = enc.pop_chunk() {
                wire.extend_from_slice(&c);
            }
        }
        for step in [1usize, 3, 7, wire.len()] {
            let mut dec = FrameDecoder::new();
            let mut got = Vec::new();
            for chunk in wire.chunks(step) {
                dec.feed(chunk);
                while let Some(m) = dec.poll().unwrap() {
                    got.push(m);
                }
            }
            assert_eq!(got, msgs, "fragmentation step {step}");
            assert_eq!(dec.buffered(), 0);
        }
    }

    #[test]
    fn bytes_needed_is_an_exact_blocking_read_hint() {
        // Reading exactly bytes_needed() at every step must produce one
        // frame without ever over-reading (read_message's contract).
        let msg = Message::SegmentData {
            session: 3,
            index: 4,
            payload: Bytes::from(vec![9u8; 333]),
        };
        let mut enc = FrameEncoder::new();
        enc.push(&msg);
        let mut wire = Vec::new();
        while let Some(c) = enc.pop_chunk() {
            wire.extend_from_slice(&c);
        }
        let mut dec = FrameDecoder::new();
        let mut offset = 0;
        loop {
            if let Some(got) = dec.poll().unwrap() {
                assert_eq!(got, msg);
                break;
            }
            let need = dec.bytes_needed();
            assert!(need > 0);
            dec.feed(&wire[offset..offset + need]);
            offset += need;
        }
        assert_eq!(offset, wire.len(), "consumed exactly one frame");
    }

    #[test]
    fn fill_from_deposits_directly_and_rolls_back_on_error() {
        let msg = Message::SegmentData {
            session: 1,
            index: 2,
            payload: Bytes::from(vec![0x42; 1_000]),
        };
        let mut enc = FrameEncoder::new();
        enc.push(&msg);
        let mut wire = Vec::new();
        enc.write_to(&mut wire).unwrap();

        // Whole frame in exactly two reads: prefix, then body.
        let mut cursor = std::io::Cursor::new(&wire[..]);
        let mut dec = FrameDecoder::new();
        assert!(dec.poll().unwrap().is_none());
        dec.fill_from(&mut cursor, dec.bytes_needed()).unwrap(); // 4-byte prefix
        assert!(dec.poll().unwrap().is_none());
        dec.fill_from(&mut cursor, dec.bytes_needed()).unwrap(); // whole body
        assert_eq!(dec.poll().unwrap(), Some(msg));
        assert_eq!(cursor.position() as usize, wire.len());

        // A short source fails without corrupting the accumulator.
        let mut dec = FrameDecoder::new();
        dec.feed(&wire[..10]);
        let before = dec.buffered();
        let mut short = std::io::Cursor::new(&wire[10..20]);
        assert!(dec.fill_from(&mut short, 100).is_err());
        assert_eq!(dec.buffered(), before, "rolled back after EOF");
    }

    #[test]
    fn oversized_prefix_still_claims_a_byte() {
        let mut dec = FrameDecoder::new();
        dec.feed(&(MAX_FRAME_LEN as u32 + 1).to_le_bytes());
        assert!(dec.bytes_needed() >= 1);
        assert!(matches!(dec.poll(), Err(DecodeError::FrameTooLarge(_))));
    }

    #[test]
    fn write_to_drains_through_a_short_writer() {
        // A writer that accepts one byte per call exercises the partial
        // chunk bookkeeping.
        struct OneByte(Vec<u8>);
        impl Write for OneByte {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                if buf.is_empty() {
                    return Ok(0);
                }
                self.0.push(buf[0]);
                Ok(1)
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let msg = Message::SegmentData {
            session: 8,
            index: 9,
            payload: Bytes::from(vec![7u8; 100]),
        };
        let mut enc = FrameEncoder::new();
        enc.push(&msg);
        let mut sink = OneByte(Vec::new());
        enc.write_to(&mut sink).unwrap();
        assert!(enc.is_empty());
        assert_eq!(enc.pending_bytes(), 0);
        let mut framed = BytesMut::new();
        encode_frame(&msg, &mut framed);
        assert_eq!(&sink.0[..], &framed[..]);
    }
}
