//! Sans-io supplier schedule: the transmitting half of one session.
//!
//! [`SupplierSchedule`] is the supplier-side counterpart of
//! [`RequesterSession`](crate::RequesterSession): it owns *what to send
//! next and when it is due* — the base [`SessionPlan`]'s periodic
//! expansion, any explicit replan shares the requester appended
//! mid-stream, and the §3 pacing stride — while the caller owns the
//! transport and the clock. The epoll-reactor serving path (`p2ps-node`)
//! and the deterministic simulation harness (`p2ps-simnet`) drive the
//! same machine, so every schedule decision tested under simulated
//! adversity is the decision the live node makes.
//!
//! # Examples
//!
//! A two-segment-per-period plan paced over an 8-segment file:
//!
//! ```
//! use p2ps_proto::{SessionPlan, SupplierSchedule};
//!
//! let plan = SessionPlan {
//!     item: "demo".into(),
//!     segments: vec![0, 1],
//!     period: 4,
//!     total_segments: 8,
//!     dt_ms: 10,
//! };
//! let mut sched = SupplierSchedule::new(plan, 2)?;
//! assert_eq!(sched.stride_slots(), 2); // period 4 tiled by 2 segments
//! assert_eq!(sched.next_deadline_ms(100), 100 + 2 * 10);
//! assert_eq!(sched.next_unsent(8), Some(0));
//! sched.consume();
//! assert_eq!(sched.next_unsent(8), Some(1));
//! # Ok::<(), p2ps_proto::ScheduleError>(())
//! ```

use std::collections::VecDeque;
use std::fmt;

use crate::SessionPlan;

/// Why a [`SessionPlan`] cannot be scheduled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum ScheduleError {
    /// The plan has no segments or a zero period.
    EmptyPlan,
    /// A periodic plan whose per-period list does not tile its period:
    /// the §3 stride `period / len` would drift off the deadline grid.
    NonTilingPeriod,
}

impl fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScheduleError::EmptyPlan => write!(f, "malformed session plan"),
            ScheduleError::NonTilingPeriod => {
                write!(f, "periodic session plan does not tile its period")
            }
        }
    }
}

impl std::error::Error for ScheduleError {}

/// The supplier half of one streaming session as a sans-io state
/// machine: what to transmit next, what it owes after a mid-stream
/// append, and when the next transmission is due.
///
/// The machine never performs I/O and never reads a clock; the caller
/// asks [`next_deadline_ms`](Self::next_deadline_ms) against its own
/// time base (reactor wheel, virtual clock) and marks transmissions with
/// [`consume`](Self::consume). See the module docs for the walk-through.
#[derive(Debug)]
pub struct SupplierSchedule {
    plan: SessionPlan,
    /// Slots of `δt` between consecutive transmissions (the §3 stride).
    spp: u64,
    /// Next transmission ordinal `p` (0-based, §3 numbering) — drives the
    /// pacing deadline across base and appended segments alike.
    p: u64,
    /// Next index into the base plan's periodic expansion.
    base_p: u64,
    /// The base plan reached its first out-of-range segment.
    base_done: bool,
    /// Mid-stream replan shares (explicit plans the requester appended
    /// after losing another supplier), served after the base plan at the
    /// same pacing stride.
    appended: VecDeque<u32>,
}

impl SupplierSchedule {
    /// Validates `plan` and derives the pacing stride.
    ///
    /// A periodic (§3) plan tiles its period exactly, so the stride is
    /// the per-period share `period / len`. An explicit one-shot plan
    /// (period spans the whole file, arbitrary list length — the
    /// non-periodic selection policies) paces at the supplier's own
    /// class rate `class_spp` instead; for rate-matched periodic plans
    /// the two formulas agree.
    ///
    /// # Errors
    ///
    /// [`ScheduleError::EmptyPlan`] for an empty segment list or zero
    /// period; [`ScheduleError::NonTilingPeriod`] when a periodic plan's
    /// list length does not divide its period.
    pub fn new(plan: SessionPlan, class_spp: u64) -> Result<Self, ScheduleError> {
        let per_period = plan.segments.len() as u64;
        if per_period == 0 || plan.period == 0 {
            return Err(ScheduleError::EmptyPlan);
        }
        let spp = if plan.is_explicit() {
            class_spp.max(1)
        } else if (u64::from(plan.period)).is_multiple_of(per_period) {
            u64::from(plan.period) / per_period
        } else {
            return Err(ScheduleError::NonTilingPeriod);
        };
        Ok(SupplierSchedule {
            plan,
            spp,
            p: 0,
            base_p: 0,
            base_done: false,
            appended: VecDeque::new(),
        })
    }

    /// The wire plan this schedule was built from.
    pub fn plan(&self) -> &SessionPlan {
        &self.plan
    }

    /// Pacing stride in slots of `δt`.
    pub fn stride_slots(&self) -> u64 {
        self.spp
    }

    /// Transmissions consumed so far (the §3 ordinal of the next send).
    pub fn transmitted(&self) -> u64 {
        self.p
    }

    /// The §3 deadline of the next transmission: `(p+1) · spp · δt` past
    /// `start_ms` on the caller's clock.
    pub fn next_deadline_ms(&self, start_ms: u64) -> u64 {
        start_ms + (self.p + 1) * self.spp * u64::from(self.plan.dt_ms)
    }

    /// The next segment due for transmission, skipping out-of-range
    /// entries, or `None` when the whole schedule (base + appended) is
    /// exhausted. `cap` bounds what the caller can actually serve (a
    /// local file copy shorter than the plan's extent). Does not
    /// consume; pair with [`consume`](Self::consume) after the send.
    pub fn next_unsent(&mut self, cap: u64) -> Option<u64> {
        loop {
            if !self.base_done {
                match self.plan.nth_segment(self.base_p) {
                    Some(seg) if seg < cap => return Some(seg),
                    _ => self.base_done = true,
                }
            } else {
                match self.appended.front() {
                    Some(&seg) if u64::from(seg) < self.plan.total_segments.min(cap) => {
                        return Some(u64::from(seg))
                    }
                    Some(_) => {
                        self.appended.pop_front();
                    }
                    None => return None,
                }
            }
        }
    }

    /// Marks the segment returned by [`next_unsent`](Self::next_unsent)
    /// as transmitted.
    pub fn consume(&mut self) {
        if self.base_done {
            self.appended.pop_front();
        } else {
            self.base_p += 1;
        }
        self.p += 1;
    }

    /// Appends an explicit replan share (the wire-level replan extension:
    /// the requester lost another supplier and this one absorbs part of
    /// the owed segments). Served after the base plan at the same pacing
    /// stride.
    pub fn append<I: IntoIterator<Item = u32>>(&mut self, extra: I) {
        self.appended.extend(extra);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan(segments: Vec<u32>, period: u32, total: u64) -> SessionPlan {
        SessionPlan {
            item: "t".into(),
            segments,
            period,
            total_segments: total,
            dt_ms: 10,
        }
    }

    #[test]
    fn periodic_plan_paces_at_the_tiled_stride() {
        let mut s = SupplierSchedule::new(plan(vec![0, 1], 4, 10), 7).unwrap();
        assert_eq!(s.stride_slots(), 2, "period 4 over 2 segments");
        assert_eq!(s.next_deadline_ms(1_000), 1_020);
        let mut sent = Vec::new();
        while let Some(seg) = s.next_unsent(10) {
            sent.push(seg);
            s.consume();
        }
        assert_eq!(sent, vec![0, 1, 4, 5, 8, 9]);
        assert_eq!(s.transmitted(), 6);
        assert_eq!(s.next_deadline_ms(0), 7 * 2 * 10);
    }

    #[test]
    fn explicit_plan_paces_at_the_class_rate() {
        let mut s = SupplierSchedule::new(plan(vec![3, 1, 4], 6, 6), 4).unwrap();
        assert_eq!(s.stride_slots(), 4, "explicit plans pace per class");
        let mut sent = Vec::new();
        while let Some(seg) = s.next_unsent(6) {
            sent.push(seg);
            s.consume();
        }
        assert_eq!(
            sent,
            vec![3, 1, 4],
            "explicit lists transmit once, verbatim"
        );
    }

    #[test]
    fn appended_shares_serve_after_the_base_plan() {
        let mut s = SupplierSchedule::new(plan(vec![0], 2, 4), 1).unwrap();
        s.append([3, 9]); // 9 is out of range and must be skipped
        let mut sent = Vec::new();
        while let Some(seg) = s.next_unsent(4) {
            sent.push(seg);
            s.consume();
        }
        assert_eq!(sent, vec![0, 2, 3]);
    }

    #[test]
    fn cap_bounds_what_a_short_copy_can_serve() {
        let mut s = SupplierSchedule::new(plan(vec![0, 1], 2, 8), 1).unwrap();
        let mut sent = Vec::new();
        while let Some(seg) = s.next_unsent(3) {
            sent.push(seg);
            s.consume();
        }
        assert_eq!(sent, vec![0, 1, 2], "segment 3 is past the local copy");
    }

    #[test]
    fn malformed_plans_are_rejected() {
        assert_eq!(
            SupplierSchedule::new(plan(vec![], 4, 8), 1).unwrap_err(),
            ScheduleError::EmptyPlan
        );
        assert_eq!(
            SupplierSchedule::new(plan(vec![0], 0, 8), 1).unwrap_err(),
            ScheduleError::EmptyPlan
        );
        assert_eq!(
            SupplierSchedule::new(plan(vec![0, 1, 2], 4, 8), 1).unwrap_err(),
            ScheduleError::NonTilingPeriod
        );
        assert!(!ScheduleError::NonTilingPeriod.to_string().is_empty());
        assert!(!ScheduleError::EmptyPlan.to_string().is_empty());
    }

    #[test]
    fn zero_class_rate_is_floored_for_explicit_plans() {
        let s = SupplierSchedule::new(plan(vec![0], 4, 4), 0).unwrap();
        assert_eq!(s.stride_slots(), 1);
    }
}
