//! Sans-io requester session: multi-supplier reassembly + owed tracking.
//!
//! The receiving half of one streaming session as a pure state machine:
//! per-supplier transmission queues go in (derived from the
//! [`SessionPlan`](crate::SessionPlan)s the requester sent), decoded
//! `SegmentData` / `EndSession` / connection-loss events are fed as they
//! happen, and the machine answers the two questions every transport
//! (blocking loop, epoll reactor, in-memory test) must ask:
//!
//! * **Is the session complete?** — every segment of the file received,
//!   byte views retained with their arrival timestamps.
//! * **What does a lost supplier still owe?** — the undelivered segments
//!   of its queue, in transmission order, ready to hand to a selection
//!   policy's `replan` so the survivors absorb the share (the paper's
//!   departure-recovery story, PAPERS.md's P2P VoD surveys).
//!
//! The machine never performs I/O and never sleeps; pacing, timers and
//! sockets belong to the caller (`p2ps-node` drives one of these per
//! session on a `p2ps-net` reactor thread).
//!
//! # Examples
//!
//! A two-supplier session where one supplier dies mid-stream:
//!
//! ```
//! use bytes::Bytes;
//! use p2ps_proto::RequesterSession;
//!
//! let mut sm = RequesterSession::new(4);
//! let a = sm.add_supplier([0, 2]);
//! let b = sm.add_supplier([1, 3]);
//! sm.on_segment(a, 0, Bytes::from(vec![0u8; 8]), 10);
//! sm.on_segment(b, 1, Bytes::from(vec![1u8; 8]), 12);
//! let owed = sm.on_failure(b); // b vanishes owing segment 3
//! assert_eq!(owed, vec![3]);
//! sm.assign_more(a, owed); // a's replanned share
//! sm.on_segment(a, 2, Bytes::from(vec![2u8; 8]), 20);
//! sm.on_segment(a, 3, Bytes::from(vec![3u8; 8]), 30);
//! assert!(sm.is_complete());
//! ```

use std::collections::VecDeque;

use bytes::Bytes;

/// Lifecycle of one supplier lane within a session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LaneState {
    /// The supplier is (expected to be) transmitting.
    Streaming,
    /// The supplier sent `EndSession` cleanly.
    Done,
    /// The connection was lost or the supplier misbehaved.
    Failed,
}

#[derive(Debug)]
struct Lane {
    /// Segments this supplier still owes, in transmission order.
    owed: VecDeque<u64>,
    state: LaneState,
}

/// Coarse lifecycle of a whole [`RequesterSession`], derived from its
/// lane states and reassembly progress — the session-level tag an
/// observer (monitoring, a stall watchdog) wants, as opposed to the
/// per-lane states the replan machinery works with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionPhase {
    /// No supplier registered yet (admission probing still running).
    Probing,
    /// At least one supplier is expected to be transmitting.
    Streaming,
    /// No supplier is transmitting and segments are still missing: the
    /// caller must replan (or the session failed).
    Reassembling,
    /// Every segment of the file has arrived.
    Complete,
}

impl SessionPhase {
    /// Stable lowercase name, matching the monitoring `state` label.
    pub fn name(self) -> &'static str {
        match self {
            SessionPhase::Probing => "probing",
            SessionPhase::Streaming => "streaming",
            SessionPhase::Reassembling => "reassembling",
            SessionPhase::Complete => "complete",
        }
    }
}

/// The requester half of one streaming session as a sans-io state
/// machine: reassembly, per-supplier owed queues, and completion.
///
/// See the module docs above for the protocol walk-through.
#[derive(Debug)]
pub struct RequesterSession {
    /// `segments[i]` holds segment `i`'s payload and arrival timestamp
    /// (caller-defined clock) once received.
    segments: Vec<Option<(Bytes, u64)>>,
    received: u64,
    lanes: Vec<Lane>,
}

impl RequesterSession {
    /// A session expecting a file of `total_segments` segments, no
    /// suppliers yet.
    pub fn new(total_segments: u64) -> Self {
        RequesterSession {
            segments: vec![None; total_segments as usize],
            received: 0,
            lanes: Vec::new(),
        }
    }

    /// Registers one supplier with its transmission queue (e.g.
    /// [`SessionPlan::expanded`](crate::SessionPlan::expanded)) and
    /// returns its lane index — the `supplier` argument of every other
    /// method.
    pub fn add_supplier<I: IntoIterator<Item = u64>>(&mut self, queue: I) -> usize {
        self.lanes.push(Lane {
            owed: queue.into_iter().collect(),
            state: LaneState::Streaming,
        });
        self.lanes.len() - 1
    }

    /// Appends replanned segments to a surviving supplier's owed queue
    /// (the caller also ships the matching explicit `SessionPlan` on the
    /// wire). No-op on a lane that already ended or failed.
    pub fn assign_more<I: IntoIterator<Item = u64>>(&mut self, supplier: usize, extra: I) {
        let lane = &mut self.lanes[supplier];
        if lane.state == LaneState::Streaming {
            lane.owed.extend(extra);
        }
    }

    /// Records one received segment from `supplier` at caller-clock time
    /// `at_ms`. Returns `true` when the segment was new (first arrival);
    /// duplicates and out-of-range indices are tolerated and ignored.
    pub fn on_segment(&mut self, supplier: usize, index: u64, payload: Bytes, at_ms: u64) -> bool {
        // Suppliers transmit their queue in order, so the owed entry is
        // almost always the front; the scan only runs on replan overlap.
        let lane = &mut self.lanes[supplier];
        if let Some(pos) = lane.owed.iter().position(|&s| s == index) {
            lane.owed.remove(pos);
        }
        let Some(slot) = self.segments.get_mut(index as usize) else {
            return false;
        };
        if slot.is_some() {
            return false;
        }
        *slot = Some((payload, at_ms));
        self.received += 1;
        true
    }

    /// The supplier ended its session cleanly. Returns any segments it
    /// still owed that nobody delivered — normally empty, but a replan
    /// raced against an `EndSession` already in flight leaves leftovers
    /// the caller must re-replan across the remaining suppliers.
    pub fn on_end(&mut self, supplier: usize) -> Vec<u64> {
        self.settle(supplier, LaneState::Done)
    }

    /// The supplier's connection was lost (close, I/O error, protocol
    /// violation, read timeout). Returns the undelivered segments of its
    /// queue, in transmission order — the `missing` input of
    /// `SelectionPolicy::replan`.
    pub fn on_failure(&mut self, supplier: usize) -> Vec<u64> {
        self.settle(supplier, LaneState::Failed)
    }

    fn settle(&mut self, supplier: usize, state: LaneState) -> Vec<u64> {
        let lane = &mut self.lanes[supplier];
        if lane.state != LaneState::Streaming {
            return Vec::new();
        }
        lane.state = state;
        lane.owed
            .drain(..)
            .filter(|&s| {
                self.segments
                    .get(s as usize)
                    .is_some_and(|slot| slot.is_none())
            })
            .collect()
    }

    /// Whether `supplier` is still expected to transmit.
    pub fn is_streaming(&self, supplier: usize) -> bool {
        self.lanes[supplier].state == LaneState::Streaming
    }

    /// Lane indices still streaming — the candidate set for a replan.
    pub fn streaming_suppliers(&self) -> impl Iterator<Item = usize> + '_ {
        self.lanes
            .iter()
            .enumerate()
            .filter(|(_, l)| l.state == LaneState::Streaming)
            .map(|(i, _)| i)
    }

    /// Number of registered supplier lanes.
    pub fn supplier_count(&self) -> usize {
        self.lanes.len()
    }

    /// Segments received so far.
    pub fn received(&self) -> u64 {
        self.received
    }

    /// Total segments the session expects.
    pub fn total_segments(&self) -> u64 {
        self.segments.len() as u64
    }

    /// Whether every segment of the file has arrived.
    pub fn is_complete(&self) -> bool {
        self.received == self.segments.len() as u64
    }

    /// Segments still owed across all streaming lanes — the live
    /// backlog an observer compares against wall-clock progress to spot
    /// a pacing stall (settled lanes owe nothing by definition; their
    /// leftovers were returned to the caller to replan).
    pub fn owed_total(&self) -> u64 {
        self.lanes
            .iter()
            .filter(|l| l.state == LaneState::Streaming)
            .map(|l| l.owed.len() as u64)
            .sum()
    }

    /// The session's coarse lifecycle tag. See [`SessionPhase`].
    pub fn phase(&self) -> SessionPhase {
        if self.is_complete() {
            SessionPhase::Complete
        } else if self.lanes.is_empty() {
            SessionPhase::Probing
        } else if self.lanes.iter().any(|l| l.state == LaneState::Streaming) {
            SessionPhase::Streaming
        } else {
            SessionPhase::Reassembling
        }
    }

    /// Consumes the machine, yielding per-segment `(payload, at_ms)`
    /// entries (`None` where nothing arrived).
    pub fn into_segments(self) -> Vec<Option<(Bytes, u64)>> {
        self.segments
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn payload(i: u64) -> Bytes {
        Bytes::from(vec![i as u8; 16])
    }

    #[test]
    fn in_order_single_supplier_completes() {
        let mut sm = RequesterSession::new(4);
        let s = sm.add_supplier(0..4);
        for i in 0..4 {
            assert!(sm.on_segment(s, i, payload(i), i * 10));
        }
        assert!(sm.is_complete());
        assert!(sm.on_end(s).is_empty());
        let segs = sm.into_segments();
        assert_eq!(segs.len(), 4);
        assert_eq!(segs[3].as_ref().unwrap().1, 30);
    }

    #[test]
    fn duplicates_and_out_of_range_are_ignored() {
        let mut sm = RequesterSession::new(2);
        let s = sm.add_supplier([0, 1]);
        assert!(sm.on_segment(s, 0, payload(0), 1));
        assert!(!sm.on_segment(s, 0, payload(9), 2), "duplicate");
        assert!(!sm.on_segment(s, 7, payload(7), 3), "out of range");
        assert_eq!(sm.received(), 1);
        // First arrival wins: the payload was not overwritten.
        let segs = sm.into_segments();
        assert_eq!(segs[0].as_ref().unwrap().0, payload(0));
    }

    #[test]
    fn failure_returns_undelivered_share_in_order() {
        let mut sm = RequesterSession::new(6);
        let a = sm.add_supplier([0, 2, 4]);
        let _b = sm.add_supplier([1, 3, 5]);
        sm.on_segment(a, 0, payload(0), 1);
        assert_eq!(sm.on_failure(a), vec![2, 4]);
        assert!(!sm.is_streaming(a));
        assert_eq!(sm.streaming_suppliers().collect::<Vec<_>>(), vec![1]);
        // A settled lane settles once.
        assert!(sm.on_failure(a).is_empty());
        assert!(sm.on_end(a).is_empty());
    }

    #[test]
    fn end_after_replan_race_surfaces_leftovers() {
        let mut sm = RequesterSession::new(4);
        let a = sm.add_supplier([0, 1]);
        sm.on_segment(a, 0, payload(0), 1);
        sm.on_segment(a, 1, payload(1), 2);
        // A replan lands on `a` just as its EndSession is in flight.
        sm.assign_more(a, [2, 3]);
        assert_eq!(sm.on_end(a), vec![2, 3], "unserved replan share returns");
        // Settled lanes silently refuse further work.
        sm.assign_more(a, [2]);
        assert!(sm.on_end(a).is_empty());
    }

    #[test]
    fn segments_delivered_elsewhere_are_not_owed() {
        let mut sm = RequesterSession::new(3);
        let a = sm.add_supplier([0, 1, 2]);
        let b = sm.add_supplier([2]); // overlap: 2 assigned twice
        sm.on_segment(b, 2, payload(2), 5);
        assert_eq!(sm.on_failure(a), vec![0, 1], "2 already arrived via b");
        assert_eq!(sm.received(), 1);
    }

    #[test]
    fn phase_follows_the_session_lifecycle() {
        let mut sm = RequesterSession::new(2);
        assert_eq!(sm.phase(), SessionPhase::Probing);
        let a = sm.add_supplier([0, 1]);
        assert_eq!(sm.phase(), SessionPhase::Streaming);
        assert_eq!(sm.owed_total(), 2);
        sm.on_segment(a, 0, payload(0), 1);
        assert_eq!(sm.owed_total(), 1);
        let owed = sm.on_failure(a);
        assert_eq!(owed, vec![1]);
        assert_eq!(sm.phase(), SessionPhase::Reassembling);
        assert_eq!(sm.owed_total(), 0, "settled lanes owe nothing");
        let b = sm.add_supplier(owed);
        assert_eq!(sm.phase(), SessionPhase::Streaming);
        sm.on_segment(b, 1, payload(1), 2);
        assert_eq!(sm.phase(), SessionPhase::Complete);
        assert_eq!(sm.phase().name(), "complete");
    }

    #[test]
    fn completion_tracks_across_replans() {
        let mut sm = RequesterSession::new(4);
        let a = sm.add_supplier([0, 1]);
        let b = sm.add_supplier([2, 3]);
        sm.on_segment(a, 0, payload(0), 1);
        sm.on_segment(b, 2, payload(2), 1);
        let owed = sm.on_failure(b);
        assert_eq!(owed, vec![3]);
        sm.assign_more(a, owed);
        sm.on_segment(a, 1, payload(1), 2);
        assert!(!sm.is_complete());
        sm.on_segment(a, 3, payload(3), 3);
        assert!(sm.is_complete());
    }
}
