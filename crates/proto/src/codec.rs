//! Frame encoding and decoding.

use std::io::{Read, Write};

use bytes::{Buf, BufMut, Bytes, BytesMut};

use p2ps_core::{PeerClass, PeerId};

use crate::{CandidateRecord, DecodeError, Message, SessionPlan};

/// Maximum accepted frame body length (16 MiB). Large enough for any
/// realistic segment payload, small enough to bound a malicious peer's
/// allocation demand.
pub const MAX_FRAME_LEN: usize = 16 * 1024 * 1024;

/// Encodes `msg` as one length-prefixed frame appended to `buf`.
pub fn encode_frame(msg: &Message, buf: &mut BytesMut) {
    let body_start = buf.len() + 4;
    buf.put_u32_le(0); // patched below
    buf.put_u8(msg.tag());
    match msg {
        Message::Register {
            item,
            peer,
            class,
            port,
        } => {
            put_str(buf, item);
            buf.put_u64_le(peer.get());
            buf.put_u8(class.get());
            buf.put_u16_le(*port);
        }
        Message::QueryCandidates { item, m } => {
            put_str(buf, item);
            buf.put_u16_le(*m);
        }
        Message::Candidates { list } => {
            buf.put_u16_le(list.len() as u16);
            for c in list {
                buf.put_u64_le(c.id.get());
                buf.put_u8(c.class.get());
                buf.put_u16_le(c.port);
            }
        }
        Message::StreamRequest { session, class } => {
            buf.put_u64_le(*session);
            buf.put_u8(class.get());
        }
        Message::Grant { session, class } => {
            buf.put_u64_le(*session);
            buf.put_u8(class.get());
        }
        Message::Deny {
            session,
            busy,
            favored,
        } => {
            buf.put_u64_le(*session);
            buf.put_u8(u8::from(*busy) | (u8::from(*favored) << 1));
        }
        Message::Release { session } => {
            buf.put_u64_le(*session);
        }
        Message::Reminder { session, class } => {
            buf.put_u64_le(*session);
            buf.put_u8(class.get());
        }
        Message::StartSession { session, plan } => {
            buf.put_u64_le(*session);
            put_str(buf, &plan.item);
            buf.put_u32_le(plan.segments.len() as u32);
            for &s in &plan.segments {
                buf.put_u32_le(s);
            }
            buf.put_u32_le(plan.period);
            buf.put_u64_le(plan.total_segments);
            buf.put_u32_le(plan.dt_ms);
        }
        Message::SegmentData {
            session,
            index,
            payload,
        } => {
            buf.put_u64_le(*session);
            buf.put_u64_le(*index);
            buf.put_u32_le(payload.len() as u32);
            buf.put_slice(payload);
        }
        Message::EndSession { session } => {
            buf.put_u64_le(*session);
        }
    }
    let body_len = (buf.len() - body_start) as u32;
    buf[body_start - 4..body_start].copy_from_slice(&body_len.to_le_bytes());
}

/// Attempts to decode one frame from the front of `buf`.
///
/// Returns `Ok(None)` when `buf` does not yet hold a complete frame (read
/// more bytes and retry); on success the frame's bytes are consumed. A
/// decoded segment payload is an O(1) shared view of the frame, not a
/// copy.
///
/// # Examples
///
/// Round-trip through the codec:
///
/// ```
/// use bytes::{Bytes, BytesMut};
/// use p2ps_proto::{decode_frame, encode_frame, Message};
///
/// let msg = Message::SegmentData {
///     session: 7,
///     index: 3,
///     payload: Bytes::from(&b"segment payload"[..]),
/// };
/// let mut buf = BytesMut::new();
/// encode_frame(&msg, &mut buf);
/// assert_eq!(decode_frame(&mut buf)?, Some(msg));
/// assert!(buf.is_empty());
/// # Ok::<(), p2ps_proto::DecodeError>(())
/// ```
///
/// # Errors
///
/// Any [`DecodeError`]; the buffer state is unspecified afterwards and the
/// connection should be dropped.
pub fn decode_frame(buf: &mut BytesMut) -> Result<Option<Message>, DecodeError> {
    let Some(len) = complete_frame_len(buf)? else {
        return Ok(None);
    };
    // Fast path: the accumulator holds exactly this frame AND fits it
    // tightly — move the allocation into the shared store instead of
    // copying the frame out. The tight-capacity guard matters twice: a
    // long-lived reactor accumulator (growth-doubled capacity) must keep
    // its buffer rather than reallocate on every message, and a payload
    // view must not pin a much larger allocation than the frame. The
    // blocking read_message path (FrameDecoder::fill_from sizes the
    // buffer to the frame) qualifies for every large frame, restoring
    // the single-copy receive of segment payloads.
    let body = if buf.len() == 4 + len && buf.capacity() == buf.len() {
        let mut whole = std::mem::take(buf).freeze();
        whole.advance(4);
        whole
    } else {
        buf.advance(4);
        // One copy of the frame out of the mutable accumulator into a
        // shared allocation; every field decoded from it — in particular
        // a segment payload — is then an O(1) view of that allocation.
        buf.copy_to_bytes(len)
    };
    decode_whole_body(body).map(Some)
}

/// Length of the payload of the frame at the head of `buf`, when a
/// complete frame is buffered; `None` when more bytes are needed.
///
/// # Errors
///
/// [`DecodeError::FrameTooLarge`] when the prefix claims more than
/// [`MAX_FRAME_LEN`].
pub(crate) fn complete_frame_len(buf: &BytesMut) -> Result<Option<usize>, DecodeError> {
    if buf.len() < 4 {
        return Ok(None);
    }
    let len = u32::from_le_bytes([buf[0], buf[1], buf[2], buf[3]]) as usize;
    if len > MAX_FRAME_LEN {
        return Err(DecodeError::FrameTooLarge(len));
    }
    if buf.len() < 4 + len {
        return Ok(None);
    }
    Ok(Some(len))
}

/// Decodes one complete frame body (length prefix already stripped),
/// rejecting trailing bytes.
pub(crate) fn decode_whole_body(mut body: Bytes) -> Result<Message, DecodeError> {
    let msg = decode_body(&mut body)?;
    if !body.is_empty() {
        return Err(DecodeError::TrailingBytes(body.len()));
    }
    Ok(msg)
}

fn decode_body(b: &mut Bytes) -> Result<Message, DecodeError> {
    let tag = get_u8(b)?;
    let msg = match tag {
        0x01 => Message::Register {
            item: get_str(b)?,
            peer: PeerId::new(get_u64(b)?),
            class: get_class(b)?,
            port: get_u16(b)?,
        },
        0x02 => Message::QueryCandidates {
            item: get_str(b)?,
            m: get_u16(b)?,
        },
        0x03 => {
            let n = get_u16(b)? as usize;
            let mut list = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                list.push(CandidateRecord {
                    id: PeerId::new(get_u64(b)?),
                    class: get_class(b)?,
                    port: get_u16(b)?,
                });
            }
            Message::Candidates { list }
        }
        0x10 => Message::StreamRequest {
            session: get_u64(b)?,
            class: get_class(b)?,
        },
        0x11 => Message::Grant {
            session: get_u64(b)?,
            class: get_class(b)?,
        },
        0x12 => {
            let session = get_u64(b)?;
            let flags = get_u8(b)?;
            Message::Deny {
                session,
                busy: flags & 1 != 0,
                favored: flags & 2 != 0,
            }
        }
        0x13 => Message::Release {
            session: get_u64(b)?,
        },
        0x14 => Message::Reminder {
            session: get_u64(b)?,
            class: get_class(b)?,
        },
        0x20 => {
            let session = get_u64(b)?;
            let item = get_str(b)?;
            let n = get_u32(b)? as usize;
            if b.remaining() < n * 4 {
                return Err(DecodeError::UnexpectedEof);
            }
            let mut segments = Vec::with_capacity(n);
            for _ in 0..n {
                segments.push(get_u32(b)?);
            }
            Message::StartSession {
                session,
                plan: SessionPlan {
                    item,
                    segments,
                    period: get_u32(b)?,
                    total_segments: get_u64(b)?,
                    dt_ms: get_u32(b)?,
                },
            }
        }
        0x21 => {
            let session = get_u64(b)?;
            let index = get_u64(b)?;
            let n = get_u32(b)? as usize;
            if b.remaining() < n {
                return Err(DecodeError::UnexpectedEof);
            }
            // O(1): the payload is a shared view of the frame allocation,
            // not a copy.
            let payload = b.split_to(n);
            Message::SegmentData {
                session,
                index,
                payload,
            }
        }
        0x22 => Message::EndSession {
            session: get_u64(b)?,
        },
        other => return Err(DecodeError::UnknownTag(other)),
    };
    Ok(msg)
}

/// Writes one frame to a blocking [`Write`] sink (the TCP path). A `&mut`
/// reference also works as the writer.
///
/// A transport shim over [`FrameEncoder`](crate::FrameEncoder):
/// [`Message::SegmentData`] — the hot path of a supplier's serving loop —
/// leaves as a small fixed header chunk plus the payload view itself,
/// gathered into one vectored write. The payload bytes are never copied
/// into an intermediate frame buffer, and a `TCP_NODELAY` socket still
/// sees a single writev instead of a 25-byte packet followed by the
/// payload.
///
/// # Errors
///
/// Propagates I/O errors.
pub fn write_message<W: Write>(mut w: W, msg: &Message) -> std::io::Result<()> {
    let mut enc = crate::FrameEncoder::new();
    enc.push(msg);
    enc.write_to(&mut w)?;
    w.flush()
}

/// Reads one complete frame from a blocking [`Read`] source (the TCP
/// path). A `&mut` reference also works as the reader.
///
/// A transport shim over [`FrameDecoder`](crate::FrameDecoder): it reads
/// exactly the decoder's [`bytes_needed`](crate::FrameDecoder::bytes_needed)
/// hint at every step (the 4-byte prefix, then the whole body — two
/// reads per frame, deposited straight into the decoder's accumulator),
/// so it never consumes bytes belonging to a later read from the same
/// stream and never copies through an intermediate scratch buffer.
///
/// # Errors
///
/// Propagates I/O errors; decode failures surface as
/// [`std::io::ErrorKind::InvalidData`]. A clean EOF before the length
/// prefix yields [`std::io::ErrorKind::UnexpectedEof`].
pub fn read_message<R: Read>(mut r: R) -> std::io::Result<Message> {
    let mut dec = crate::FrameDecoder::new();
    loop {
        if let Some(msg) = dec.poll()? {
            return Ok(msg);
        }
        let want = dec.bytes_needed();
        dec.fill_from(&mut r, want)?;
    }
}

fn put_str(buf: &mut BytesMut, s: &str) {
    buf.put_u16_le(s.len() as u16);
    buf.put_slice(s.as_bytes());
}

fn get_u8(b: &mut Bytes) -> Result<u8, DecodeError> {
    if b.remaining() < 1 {
        return Err(DecodeError::UnexpectedEof);
    }
    Ok(b.get_u8())
}

fn get_u16(b: &mut Bytes) -> Result<u16, DecodeError> {
    if b.remaining() < 2 {
        return Err(DecodeError::UnexpectedEof);
    }
    Ok(b.get_u16_le())
}

fn get_u32(b: &mut Bytes) -> Result<u32, DecodeError> {
    if b.remaining() < 4 {
        return Err(DecodeError::UnexpectedEof);
    }
    Ok(b.get_u32_le())
}

fn get_u64(b: &mut Bytes) -> Result<u64, DecodeError> {
    if b.remaining() < 8 {
        return Err(DecodeError::UnexpectedEof);
    }
    Ok(b.get_u64_le())
}

fn get_class(b: &mut Bytes) -> Result<PeerClass, DecodeError> {
    let raw = get_u8(b)?;
    PeerClass::new(raw).map_err(|_| DecodeError::InvalidClass(raw))
}

fn get_str(b: &mut Bytes) -> Result<String, DecodeError> {
    let n = get_u16(b)? as usize;
    if b.remaining() < n {
        return Err(DecodeError::UnexpectedEof);
    }
    let raw = b.split_to(n);
    // Validate in place on the shared view; the only copy is the one
    // into the returned String (the old intermediate Vec doubled it).
    std::str::from_utf8(&raw)
        .map(str::to_owned)
        .map_err(|_| DecodeError::InvalidUtf8)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn class(k: u8) -> PeerClass {
        PeerClass::new(k).unwrap()
    }

    fn all_messages() -> Vec<Message> {
        vec![
            Message::Register {
                item: "video".into(),
                peer: PeerId::new(7),
                class: class(2),
                port: 9000,
            },
            Message::QueryCandidates {
                item: "video".into(),
                m: 8,
            },
            Message::Candidates {
                list: vec![
                    CandidateRecord {
                        id: PeerId::new(1),
                        class: class(1),
                        port: 9001,
                    },
                    CandidateRecord {
                        id: PeerId::new(2),
                        class: class(4),
                        port: 9002,
                    },
                ],
            },
            Message::StreamRequest {
                session: 99,
                class: class(3),
            },
            Message::Grant {
                session: 99,
                class: class(2),
            },
            Message::Deny {
                session: 99,
                busy: true,
                favored: true,
            },
            Message::Deny {
                session: 99,
                busy: false,
                favored: false,
            },
            Message::Release { session: 99 },
            Message::Reminder {
                session: 99,
                class: class(1),
            },
            Message::StartSession {
                session: 99,
                plan: SessionPlan {
                    item: "video".into(),
                    segments: vec![0, 1, 3, 7],
                    period: 8,
                    total_segments: 3_600,
                    dt_ms: 1_000,
                },
            },
            Message::SegmentData {
                session: 99,
                index: 42,
                payload: Bytes::from(vec![0xab; 1_024]),
            },
            Message::EndSession { session: 99 },
        ]
    }

    #[test]
    fn round_trip_every_message() {
        for msg in all_messages() {
            let mut buf = BytesMut::new();
            encode_frame(&msg, &mut buf);
            let decoded = decode_frame(&mut buf).unwrap().unwrap();
            assert_eq!(decoded, msg, "round trip of {}", msg.name());
            assert!(buf.is_empty(), "frame fully consumed for {}", msg.name());
        }
    }

    #[test]
    fn multiple_frames_in_one_buffer() {
        let msgs = all_messages();
        let mut buf = BytesMut::new();
        for m in &msgs {
            encode_frame(m, &mut buf);
        }
        for expected in &msgs {
            let got = decode_frame(&mut buf).unwrap().unwrap();
            assert_eq!(&got, expected);
        }
        assert!(decode_frame(&mut buf).unwrap().is_none());
    }

    #[test]
    fn partial_frames_request_more_bytes() {
        let mut full = BytesMut::new();
        encode_frame(&Message::Release { session: 5 }, &mut full);
        for cut in 0..full.len() {
            let mut partial = BytesMut::from(&full[..cut]);
            assert_eq!(
                decode_frame(&mut partial).unwrap(),
                None,
                "cut at {cut} bytes"
            );
        }
    }

    #[test]
    fn oversized_frame_rejected() {
        let mut buf = BytesMut::new();
        buf.put_u32_le((MAX_FRAME_LEN + 1) as u32);
        buf.put_slice(&[0; 8]);
        assert!(matches!(
            decode_frame(&mut buf),
            Err(DecodeError::FrameTooLarge(_))
        ));
    }

    #[test]
    fn unknown_tag_rejected() {
        let mut buf = BytesMut::new();
        buf.put_u32_le(1);
        buf.put_u8(0x7f);
        assert_eq!(decode_frame(&mut buf), Err(DecodeError::UnknownTag(0x7f)));
    }

    #[test]
    fn invalid_class_rejected() {
        let mut buf = BytesMut::new();
        buf.put_u32_le(10);
        buf.put_u8(0x10); // StreamRequest
        buf.put_u64_le(1);
        buf.put_u8(0); // class 0 invalid
        assert_eq!(decode_frame(&mut buf), Err(DecodeError::InvalidClass(0)));
    }

    #[test]
    fn truncated_body_rejected() {
        let mut buf = BytesMut::new();
        buf.put_u32_le(3);
        buf.put_u8(0x13); // Release needs 8 more bytes, only 2 present
        buf.put_u16_le(0);
        assert_eq!(decode_frame(&mut buf), Err(DecodeError::UnexpectedEof));
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut buf = BytesMut::new();
        buf.put_u32_le(10);
        buf.put_u8(0x22); // EndSession: 8 bytes of session
        buf.put_u64_le(1);
        buf.put_u8(0xee); // extra byte
        assert_eq!(decode_frame(&mut buf), Err(DecodeError::TrailingBytes(1)));
    }

    #[test]
    fn invalid_utf8_rejected() {
        let mut buf = BytesMut::new();
        buf.put_u32_le(1 + 2 + 2 + 2);
        buf.put_u8(0x02); // QueryCandidates
        buf.put_u16_le(2);
        buf.put_slice(&[0xff, 0xfe]);
        buf.put_u16_le(8);
        assert_eq!(decode_frame(&mut buf), Err(DecodeError::InvalidUtf8));
    }

    #[test]
    fn segment_data_write_matches_encode_frame() {
        // The zero-copy write path hand-builds the frame header; it must
        // stay byte-identical to the generic encoder.
        for size in [0usize, 1, 1_024, 64 * 1024] {
            let msg = Message::SegmentData {
                session: 0x0102_0304_0506_0708,
                index: 0x1122_3344_5566_7788,
                payload: Bytes::from(vec![0x5a; size]),
            };
            let mut framed = BytesMut::new();
            encode_frame(&msg, &mut framed);
            let mut written = Vec::new();
            write_message(&mut written, &msg).unwrap();
            assert_eq!(&written[..], &framed[..], "payload size {size}");
        }
    }

    #[test]
    fn decoded_payload_round_trips_and_clones_shared() {
        // The payload-as-view property itself (split_to aliasing the
        // frame allocation) is pinned at the Bytes layer by
        // vendor/bytes' `copy_to_bytes_is_a_view_for_bytes` /
        // `clone_and_views_share_the_allocation`; decode_body reaches it
        // through `Bytes::split_to`. Here we pin what is observable
        // through the public codec API: contents survive the trip and the
        // handed-out payload clones by pointer.
        let payload = Bytes::from(vec![0xcd; 4 * 1024]);
        let msg = Message::SegmentData {
            session: 1,
            index: 2,
            payload: payload.clone(),
        };
        let mut buf = BytesMut::new();
        encode_frame(&msg, &mut buf);
        let Some(Message::SegmentData { payload: got, .. }) = decode_frame(&mut buf).unwrap()
        else {
            panic!("expected segment data");
        };
        assert_eq!(got, payload);
        let cloned = got.clone();
        assert_eq!(cloned.as_ptr(), got.as_ptr(), "clone is O(1)");
    }

    #[test]
    fn io_read_write_round_trip() {
        let mut wire = Vec::new();
        for m in all_messages() {
            write_message(&mut wire, &m).unwrap();
        }
        let mut cursor = std::io::Cursor::new(wire);
        for expected in all_messages() {
            let got = read_message(&mut cursor).unwrap();
            assert_eq!(got, expected);
        }
        // clean EOF afterwards
        let err = read_message(&mut cursor).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn empty_payload_and_empty_strings() {
        let msgs = [
            Message::SegmentData {
                session: 0,
                index: 0,
                payload: Bytes::new(),
            },
            Message::QueryCandidates {
                item: String::new(),
                m: 0,
            },
            Message::Candidates { list: vec![] },
        ];
        for msg in msgs {
            let mut buf = BytesMut::new();
            encode_frame(&msg, &mut buf);
            assert_eq!(decode_frame(&mut buf).unwrap().unwrap(), msg);
        }
    }
}
