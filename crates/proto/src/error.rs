//! Codec error type.

use std::fmt;

/// Errors produced while decoding a frame.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DecodeError {
    /// The frame body ended before all advertised fields were read.
    UnexpectedEof,
    /// The message tag byte is not a known message type.
    UnknownTag(u8),
    /// A peer-class byte was outside the valid range.
    InvalidClass(u8),
    /// A string field was not valid UTF-8.
    InvalidUtf8,
    /// The frame length prefix exceeds [`crate::MAX_FRAME_LEN`].
    FrameTooLarge(usize),
    /// Bytes remained in the frame after the last field — a framing bug or
    /// a protocol-version mismatch.
    TrailingBytes(usize),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::UnexpectedEof => write!(f, "frame ended before all fields were read"),
            DecodeError::UnknownTag(t) => write!(f, "unknown message tag {t:#04x}"),
            DecodeError::InvalidClass(c) => write!(f, "invalid peer class byte {c}"),
            DecodeError::InvalidUtf8 => write!(f, "string field was not valid utf-8"),
            DecodeError::FrameTooLarge(n) => write!(f, "frame length {n} exceeds the limit"),
            DecodeError::TrailingBytes(n) => {
                write!(f, "{n} trailing bytes after the last field")
            }
        }
    }
}

impl std::error::Error for DecodeError {}

impl From<DecodeError> for std::io::Error {
    fn from(e: DecodeError) -> Self {
        std::io::Error::new(std::io::ErrorKind::InvalidData, e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(DecodeError::UnexpectedEof.to_string().contains("ended"));
        assert!(DecodeError::UnknownTag(0xff).to_string().contains("0xff"));
        assert!(DecodeError::InvalidClass(0).to_string().contains("class"));
        assert!(DecodeError::InvalidUtf8.to_string().contains("utf-8"));
        assert!(DecodeError::FrameTooLarge(1)
            .to_string()
            .contains("exceeds"));
        assert!(DecodeError::TrailingBytes(3)
            .to_string()
            .contains("trailing"));
    }

    #[test]
    fn converts_to_io_error() {
        let io: std::io::Error = DecodeError::UnexpectedEof.into();
        assert_eq!(io.kind(), std::io::ErrorKind::InvalidData);
    }
}
