//! A queue of zero-copy chunks with vectored-write bookkeeping.
//!
//! Both halves of the transport stack queue outbound [`Bytes`] chunks
//! and drain them with `writev`: the blocking
//! [`FrameEncoder`](crate::FrameEncoder) and the reactor's
//! per-connection flush (`p2ps-net`). The gather-up-to-16-slices loop
//! and the partial-advance arithmetic (a short write consumes whole
//! front chunks plus a slice of the next) used to be duplicated in both;
//! [`ChunkQueue`] is the one shared implementation.

use std::collections::VecDeque;
use std::io::{IoSlice, Write};

use bytes::Bytes;

/// Upper bound of chunks gathered into one vectored write: a frame is at
/// most two chunks (header + payload view), so 16 slices batch several
/// queued messages per syscall while staying on the stack.
pub const MAX_GATHER_SLICES: usize = 16;

/// An ordered queue of [`Bytes`] chunks plus the byte count not yet
/// written, with partial-write consumption.
///
/// Chunks are never copied: a partial write slices the front chunk in
/// place (`Bytes::split_to` moves the view's start, not the data).
///
/// # Examples
///
/// ```
/// use p2ps_proto::ChunkQueue;
/// use bytes::Bytes;
///
/// let mut q = ChunkQueue::new();
/// q.push(Bytes::from(vec![1, 2, 3]));
/// q.push(Bytes::from(vec![4, 5]));
/// assert_eq!(q.pending_bytes(), 5);
/// q.advance(4); // consumes the first chunk and one byte of the second
/// assert_eq!(q.pending_bytes(), 1);
/// ```
#[derive(Debug, Default)]
pub struct ChunkQueue {
    chunks: VecDeque<Bytes>,
    queued: usize,
}

impl ChunkQueue {
    /// An empty queue.
    pub fn new() -> Self {
        ChunkQueue::default()
    }

    /// Appends one chunk.
    pub fn push(&mut self, chunk: Bytes) {
        self.queued += chunk.len();
        self.chunks.push_back(chunk);
    }

    /// Removes and returns the front chunk.
    pub fn pop(&mut self) -> Option<Bytes> {
        let chunk = self.chunks.pop_front()?;
        self.queued -= chunk.len();
        Some(chunk)
    }

    /// Bytes queued across all chunks.
    pub fn pending_bytes(&self) -> usize {
        self.queued
    }

    /// True when no chunks are queued (zero-length chunks count until
    /// [`clear`](Self::clear) or a draining write removes them).
    pub fn is_empty(&self) -> bool {
        self.chunks.is_empty()
    }

    /// Drops every queued chunk.
    pub fn clear(&mut self) {
        self.chunks.clear();
        self.queued = 0;
    }

    /// Fills `slices` with views of the front non-empty chunks (at most
    /// `slices.len()`), returning how many were filled — the gather half
    /// of one vectored write.
    pub fn gather<'a>(&'a self, slices: &mut [IoSlice<'a>]) -> usize {
        let mut count = 0;
        for chunk in self
            .chunks
            .iter()
            .filter(|c| !c.is_empty())
            .take(slices.len())
        {
            slices[count] = IoSlice::new(&chunk[..]);
            count += 1;
        }
        count
    }

    /// Marks `n` queued bytes as written, consuming chunks front first;
    /// a chunk written halfway is sliced, not copied. Leading zero-length
    /// chunks (empty payload views) are swept along.
    ///
    /// # Panics
    ///
    /// Panics if `n` exceeds [`pending_bytes`](Self::pending_bytes).
    pub fn advance(&mut self, mut n: usize) {
        assert!(n <= self.queued, "advance past the queued bytes");
        self.queued -= n;
        while n > 0 || self.chunks.front().is_some_and(|c| c.is_empty()) {
            let front = self.chunks.front_mut().expect("accounted chunks");
            if front.len() <= n {
                n -= front.len();
                self.chunks.pop_front();
            } else {
                let _ = front.split_to(n);
                n = 0;
            }
        }
    }

    /// Drains the whole queue into a blocking writer with vectored
    /// writes. On success the queue is empty (trailing zero-length
    /// chunks included).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors ([`std::io::ErrorKind::WriteZero`] for a
    /// writer that stops accepting bytes); only accepted bytes are
    /// consumed, so the unwritten tail stays queued.
    pub fn write_to<W: Write>(&mut self, mut w: W) -> std::io::Result<()> {
        while self.queued > 0 {
            let mut slices = [IoSlice::new(&[]); MAX_GATHER_SLICES];
            let count = self.gather(&mut slices);
            let n = w.write_vectored(&slices[..count])?;
            if n == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::WriteZero,
                    "failed to write the whole frame",
                ));
            }
            self.advance(n);
        }
        self.chunks.clear(); // zero-length payload chunks carry no bytes
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn queue_of(parts: &[&[u8]]) -> ChunkQueue {
        let mut q = ChunkQueue::new();
        for p in parts {
            q.push(Bytes::from(p.to_vec()));
        }
        q
    }

    #[test]
    fn push_pop_accounting() {
        let mut q = queue_of(&[b"abc", b"", b"de"]);
        assert_eq!(q.pending_bytes(), 5);
        assert!(!q.is_empty());
        assert_eq!(q.pop().unwrap(), Bytes::from(&b"abc"[..]));
        assert_eq!(q.pending_bytes(), 2);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.pending_bytes(), 0);
    }

    #[test]
    fn gather_skips_empty_chunks_and_caps_at_slice_count() {
        let mut q = ChunkQueue::new();
        q.push(Bytes::new());
        for i in 0..20u8 {
            q.push(Bytes::from(vec![i]));
        }
        let mut slices = [IoSlice::new(&[]); MAX_GATHER_SLICES];
        let count = q.gather(&mut slices);
        assert_eq!(count, MAX_GATHER_SLICES);
        assert_eq!(&slices[0][..], &[0u8]);
    }

    #[test]
    fn advance_slices_partial_chunks() {
        let mut q = queue_of(&[b"abcd", b"efgh"]);
        q.advance(6);
        assert_eq!(q.pending_bytes(), 2);
        assert_eq!(q.pop().unwrap(), Bytes::from(&b"gh"[..]));
    }

    #[test]
    fn advance_sweeps_leading_empties() {
        let mut q = ChunkQueue::new();
        q.push(Bytes::from(vec![1, 2]));
        q.push(Bytes::new());
        q.push(Bytes::from(vec![3]));
        q.advance(2);
        // The empty chunk behind the consumed one is swept too.
        assert_eq!(q.pop().unwrap(), Bytes::from(vec![3]));
    }

    #[test]
    #[should_panic(expected = "advance past")]
    fn advance_past_queue_panics() {
        queue_of(&[b"ab"]).advance(3);
    }

    #[test]
    fn write_to_drains_through_short_writers() {
        struct OneByte(Vec<u8>);
        impl Write for OneByte {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                if buf.is_empty() {
                    return Ok(0);
                }
                self.0.push(buf[0]);
                Ok(1)
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let mut q = queue_of(&[b"hello", b"", b" world"]);
        let mut sink = OneByte(Vec::new());
        q.write_to(&mut sink).unwrap();
        assert_eq!(sink.0, b"hello world");
        assert!(q.is_empty());
        assert_eq!(q.pending_bytes(), 0);
    }

    #[test]
    fn write_zero_surfaces_and_preserves_tail() {
        struct Dead;
        impl Write for Dead {
            fn write(&mut self, _: &[u8]) -> std::io::Result<usize> {
                Ok(0)
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let mut q = queue_of(&[b"abc"]);
        let err = q.write_to(Dead).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::WriteZero);
        assert_eq!(q.pending_bytes(), 3, "nothing consumed");
    }
}
