//! Protocol message types.

use bytes::Bytes;

use p2ps_core::{PeerClass, PeerId};

/// One candidate in a directory response.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CandidateRecord {
    /// The candidate's identity.
    pub id: PeerId,
    /// The candidate's advertised class.
    pub class: PeerClass,
    /// The candidate's listening port on the loopback interface (the node
    /// runtime is single-host; a production deployment would carry a full
    /// socket address here).
    pub port: u16,
}

/// The session parameters a requester sends each participating supplier.
///
/// `segments` are the supplier's per-period segment numbers computed by
/// `OTSp2p`; the supplier streams segment `s + j·period` for every period
/// `j` while `s + j·period < total_segments`, pacing one segment per
/// `2^(class-1) · δt`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SessionPlan {
    /// Media item to stream.
    pub item: String,
    /// Per-period segment numbers assigned to this supplier, ascending.
    pub segments: Vec<u32>,
    /// The assignment period `2^(ℓ-1)`.
    pub period: u32,
    /// Total number of segments in the media file.
    pub total_segments: u64,
    /// Segment playback time `δt` in milliseconds.
    pub dt_ms: u32,
}

impl SessionPlan {
    /// Whether this is an *explicit* (one-shot) plan: its period spans the
    /// whole file, so [`expanded`](Self::expanded) yields `segments` once,
    /// verbatim. Periodic §3 plans repeat per period instead. The supplier
    /// paces explicit plans at its own class rate.
    pub fn is_explicit(&self) -> bool {
        u64::from(self.period) == self.total_segments.max(1)
    }

    /// The segment transmission ordinal `p` carries under this plan —
    /// `(p / len) · period + segments[p % len]` — or `None` once the
    /// session is over (the first out-of-range segment ends it). This is
    /// **the** wire expansion rule: the supplier's pacing loop, the
    /// requester's owed-queue bookkeeping and `p2ps-policy`'s
    /// `PolicyPlan::queues` must all agree with it.
    pub fn nth_segment(&self, p: u64) -> Option<u64> {
        let len = self.segments.len() as u64;
        if len == 0 {
            return None; // empty plan: ends immediately
        }
        let seg = (p / len) * u64::from(self.period) + u64::from(self.segments[(p % len) as usize]);
        (seg < self.total_segments).then_some(seg)
    }

    /// The plan's whole transmission queue:
    /// [`nth_segment`](Self::nth_segment) for `p = 0, 1, …` until the
    /// session ends. The requester's session state machine uses this to
    /// know what every supplier still owes.
    pub fn expanded(&self) -> impl Iterator<Item = u64> + '_ {
        (0u64..).map_while(move |p| self.nth_segment(p))
    }

    /// The plan's pacing stride in slots of `δt`, floored at one: an
    /// explicit plan paces at the supplier's own class rate (`class_spp`,
    /// its `2^(k-1)` slots per segment), a periodic §3 plan at its
    /// per-period share `period / len`. This is the requester's *healthy
    /// bound* on the gap between consecutive segments (the stall
    /// watchdog's stride); the supplier side additionally requires
    /// periodic plans to tile exactly
    /// ([`SupplierSchedule::new`](crate::SupplierSchedule::new)).
    pub fn stride_slots(&self, class_spp: u64) -> u64 {
        let spp = if self.is_explicit() {
            class_spp
        } else {
            u64::from(self.period)
                .checked_div(self.segments.len() as u64)
                .unwrap_or(u64::from(self.period))
        };
        spp.max(1)
    }
}

/// Every message exchanged between peers and the directory server.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Message {
    // ---- lookup plane -------------------------------------------------
    /// Announce this peer as a supplier of `item`.
    Register {
        /// Media item being supplied.
        item: String,
        /// The supplier's identity.
        peer: PeerId,
        /// The supplier's bandwidth class.
        class: PeerClass,
        /// The supplier's listening port.
        port: u16,
    },
    /// Ask the directory for up to `m` random candidates for `item`.
    QueryCandidates {
        /// Media item requested.
        item: String,
        /// Maximum number of candidates (the paper's `M`).
        m: u16,
    },
    /// Directory response to [`Message::QueryCandidates`].
    Candidates {
        /// The sampled candidate suppliers.
        list: Vec<CandidateRecord>,
    },

    // ---- admission plane ----------------------------------------------
    /// A class-`class` requesting peer asks to be served (paper §4.2).
    StreamRequest {
        /// Requester-chosen session identifier.
        session: u64,
        /// The requester's pledged class.
        class: PeerClass,
    },
    /// The supplier grants its out-bound bandwidth (passed the
    /// probabilistic admission test and is idle).
    Grant {
        /// Echoed session identifier.
        session: u64,
        /// The supplier's class (determines its bandwidth offer).
        class: PeerClass,
    },
    /// The supplier declines.
    Deny {
        /// Echoed session identifier.
        session: u64,
        /// Whether the supplier was busy (vs. failed the probability test).
        busy: bool,
        /// Whether the requester's class is currently favored — the
        /// precondition for leaving a reminder.
        favored: bool,
    },
    /// The requester releases an unused grant (attempt failed overall).
    Release {
        /// Echoed session identifier.
        session: u64,
    },
    /// The requester leaves a reminder with a busy, favoring supplier.
    Reminder {
        /// Echoed session identifier.
        session: u64,
        /// The reminding requester's class.
        class: PeerClass,
    },

    // ---- streaming plane ----------------------------------------------
    /// The requester confirms admission and starts the session with this
    /// supplier's share of the `OTSp2p` assignment.
    StartSession {
        /// Echoed session identifier.
        session: u64,
        /// The supplier's streaming plan.
        plan: SessionPlan,
    },
    /// One media segment.
    SegmentData {
        /// Echoed session identifier.
        session: u64,
        /// Global segment index.
        index: u64,
        /// Segment payload.
        payload: Bytes,
    },
    /// The sender is done with the session (all segments delivered, or the
    /// requester aborts).
    EndSession {
        /// Echoed session identifier.
        session: u64,
    },
}

impl Message {
    /// The frame tag byte identifying this message on the wire.
    pub fn tag(&self) -> u8 {
        match self {
            Message::Register { .. } => 0x01,
            Message::QueryCandidates { .. } => 0x02,
            Message::Candidates { .. } => 0x03,
            Message::StreamRequest { .. } => 0x10,
            Message::Grant { .. } => 0x11,
            Message::Deny { .. } => 0x12,
            Message::Release { .. } => 0x13,
            Message::Reminder { .. } => 0x14,
            Message::StartSession { .. } => 0x20,
            Message::SegmentData { .. } => 0x21,
            Message::EndSession { .. } => 0x22,
        }
    }

    /// Short human-readable name for logs.
    pub fn name(&self) -> &'static str {
        match self {
            Message::Register { .. } => "register",
            Message::QueryCandidates { .. } => "query-candidates",
            Message::Candidates { .. } => "candidates",
            Message::StreamRequest { .. } => "stream-request",
            Message::Grant { .. } => "grant",
            Message::Deny { .. } => "deny",
            Message::Release { .. } => "release",
            Message::Reminder { .. } => "reminder",
            Message::StartSession { .. } => "start-session",
            Message::SegmentData { .. } => "segment-data",
            Message::EndSession { .. } => "end-session",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tags_are_unique() {
        let msgs = [
            Message::Register {
                item: String::new(),
                peer: PeerId::new(0),
                class: PeerClass::HIGHEST,
                port: 0,
            },
            Message::QueryCandidates {
                item: String::new(),
                m: 0,
            },
            Message::Candidates { list: vec![] },
            Message::StreamRequest {
                session: 0,
                class: PeerClass::HIGHEST,
            },
            Message::Grant {
                session: 0,
                class: PeerClass::HIGHEST,
            },
            Message::Deny {
                session: 0,
                busy: false,
                favored: false,
            },
            Message::Release { session: 0 },
            Message::Reminder {
                session: 0,
                class: PeerClass::HIGHEST,
            },
            Message::StartSession {
                session: 0,
                plan: SessionPlan {
                    item: String::new(),
                    segments: vec![],
                    period: 1,
                    total_segments: 1,
                    dt_ms: 1,
                },
            },
            Message::SegmentData {
                session: 0,
                index: 0,
                payload: Bytes::new(),
            },
            Message::EndSession { session: 0 },
        ];
        let mut tags: Vec<u8> = msgs.iter().map(Message::tag).collect();
        let names: Vec<&str> = msgs.iter().map(Message::name).collect();
        tags.sort_unstable();
        tags.dedup();
        assert_eq!(tags.len(), msgs.len(), "duplicate message tags");
        assert!(names.iter().all(|n| !n.is_empty()));
    }
}
