//! The flight-recorder event catalog: every structured protocol event a
//! session can witness, with a stable wire-free encoding.
//!
//! The recorder itself (`p2ps-monitor`) stores raw `(at_ms, code, a, b)`
//! tuples so it needs no protocol knowledge; this module is the shared
//! vocabulary both ends speak. Producers (`p2ps-node`'s reactor and
//! watchdog, `p2ps-simnet`'s deterministic world) call
//! [`SessionEvent::code`]/[`SessionEvent::fields`] when recording;
//! consumers (`p2psd status --trace`, tests) call
//! [`SessionEvent::decode`] to turn a dumped ring back into a readable
//! timeline.
//!
//! Codes are part of the observable surface (they appear in trace dumps
//! and in simnet's deterministic trace hash): never renumber an existing
//! variant, only append.

use std::fmt;

/// One structured protocol event on a session's timeline.
///
/// The `(code, a, b)` encoding is lossless: `decode(code(), fields())`
/// round-trips every variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum SessionEvent {
    /// `StreamRequest` left on an admission lane.
    AdmissionRequest {
        /// Candidate lane index within the round.
        lane: u64,
    },
    /// A `Grant` arrived on an admission lane.
    AdmissionGrant {
        /// Candidate lane index within the round.
        lane: u64,
    },
    /// A `Deny` arrived on an admission lane.
    AdmissionDeny {
        /// Candidate lane index within the round.
        lane: u64,
    },
    /// A `Reminder` left for a denying candidate (paper §4.2).
    AdmissionReminder {
        /// Candidate lane index within the round.
        lane: u64,
    },
    /// The round admitted and a lane's `StartSession` plan shipped.
    PlanSent {
        /// Streaming lane index (assignment slot order).
        lane: u64,
        /// Number of segments in the lane's share.
        segments: u64,
    },
    /// A media segment arrived and was accepted into reassembly.
    SegmentArrived {
        /// Streaming lane index that delivered it.
        lane: u64,
        /// Segment index within the media item.
        index: u64,
    },
    /// A surviving lane received a replanned share (`StartSession`
    /// append) after another lane failed.
    Replanned {
        /// Surviving streaming lane index.
        lane: u64,
        /// Number of segments in the reassigned share.
        segments: u64,
    },
    /// The watchdog flagged the session as stalled.
    StallFlagged {
        /// Milliseconds since the last observed progress.
        lag_ms: u64,
    },
    /// Stall recovery failed the stalest quiet lane to force a replan.
    RecoveryStarted {
        /// The lane being failed.
        lane: u64,
        /// 1-based recovery attempt number for this session.
        attempt: u64,
    },
    /// A recovery attempt shipped a replan; the session is streaming
    /// again (pending fresh data).
    Recovered {
        /// The attempt number that produced the replan.
        attempt: u64,
    },
    /// Recovery gave up: no survivors (or attempts exhausted) and the
    /// session failed structurally with `SuppliersLost`.
    GaveUp {
        /// Segments still missing at give-up.
        missing: u64,
    },
    /// The session reassembled every segment.
    Completed {
        /// Total segments received.
        received: u64,
    },
}

impl SessionEvent {
    /// The stable one-byte discriminant used in recorded tuples.
    pub fn code(&self) -> u8 {
        match self {
            SessionEvent::AdmissionRequest { .. } => 1,
            SessionEvent::AdmissionGrant { .. } => 2,
            SessionEvent::AdmissionDeny { .. } => 3,
            SessionEvent::AdmissionReminder { .. } => 4,
            SessionEvent::PlanSent { .. } => 5,
            SessionEvent::SegmentArrived { .. } => 6,
            SessionEvent::Replanned { .. } => 7,
            SessionEvent::StallFlagged { .. } => 8,
            SessionEvent::RecoveryStarted { .. } => 9,
            SessionEvent::Recovered { .. } => 10,
            SessionEvent::GaveUp { .. } => 11,
            SessionEvent::Completed { .. } => 12,
        }
    }

    /// The `(a, b)` payload words for the recorded tuple; unused words
    /// are zero.
    pub fn fields(&self) -> (u64, u64) {
        match *self {
            SessionEvent::AdmissionRequest { lane }
            | SessionEvent::AdmissionGrant { lane }
            | SessionEvent::AdmissionDeny { lane }
            | SessionEvent::AdmissionReminder { lane } => (lane, 0),
            SessionEvent::PlanSent { lane, segments } => (lane, segments),
            SessionEvent::SegmentArrived { lane, index } => (lane, index),
            SessionEvent::Replanned { lane, segments } => (lane, segments),
            SessionEvent::StallFlagged { lag_ms } => (lag_ms, 0),
            SessionEvent::RecoveryStarted { lane, attempt } => (lane, attempt),
            SessionEvent::Recovered { attempt } => (attempt, 0),
            SessionEvent::GaveUp { missing } => (missing, 0),
            SessionEvent::Completed { received } => (received, 0),
        }
    }

    /// Rebuilds the event from a recorded `(code, a, b)` tuple; `None`
    /// for codes this build does not know (a newer producer's ring read
    /// by an older consumer).
    pub fn decode(code: u8, a: u64, b: u64) -> Option<SessionEvent> {
        Some(match code {
            1 => SessionEvent::AdmissionRequest { lane: a },
            2 => SessionEvent::AdmissionGrant { lane: a },
            3 => SessionEvent::AdmissionDeny { lane: a },
            4 => SessionEvent::AdmissionReminder { lane: a },
            5 => SessionEvent::PlanSent {
                lane: a,
                segments: b,
            },
            6 => SessionEvent::SegmentArrived { lane: a, index: b },
            7 => SessionEvent::Replanned {
                lane: a,
                segments: b,
            },
            8 => SessionEvent::StallFlagged { lag_ms: a },
            9 => SessionEvent::RecoveryStarted {
                lane: a,
                attempt: b,
            },
            10 => SessionEvent::Recovered { attempt: a },
            11 => SessionEvent::GaveUp { missing: a },
            12 => SessionEvent::Completed { received: a },
            _ => return None,
        })
    }
}

impl fmt::Display for SessionEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            SessionEvent::AdmissionRequest { lane } => write!(f, "admission-request lane={lane}"),
            SessionEvent::AdmissionGrant { lane } => write!(f, "admission-grant lane={lane}"),
            SessionEvent::AdmissionDeny { lane } => write!(f, "admission-deny lane={lane}"),
            SessionEvent::AdmissionReminder { lane } => write!(f, "admission-reminder lane={lane}"),
            SessionEvent::PlanSent { lane, segments } => {
                write!(f, "plan-sent lane={lane} segments={segments}")
            }
            SessionEvent::SegmentArrived { lane, index } => {
                write!(f, "segment lane={lane} index={index}")
            }
            SessionEvent::Replanned { lane, segments } => {
                write!(f, "replanned lane={lane} segments={segments}")
            }
            SessionEvent::StallFlagged { lag_ms } => write!(f, "stall-flagged lag_ms={lag_ms}"),
            SessionEvent::RecoveryStarted { lane, attempt } => {
                write!(f, "recovery-started lane={lane} attempt={attempt}")
            }
            SessionEvent::Recovered { attempt } => write!(f, "recovered attempt={attempt}"),
            SessionEvent::GaveUp { missing } => write!(f, "gave-up missing={missing}"),
            SessionEvent::Completed { received } => write!(f, "completed received={received}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALL: &[SessionEvent] = &[
        SessionEvent::AdmissionRequest { lane: 3 },
        SessionEvent::AdmissionGrant { lane: 2 },
        SessionEvent::AdmissionDeny { lane: 1 },
        SessionEvent::AdmissionReminder { lane: 0 },
        SessionEvent::PlanSent {
            lane: 1,
            segments: 8,
        },
        SessionEvent::SegmentArrived { lane: 0, index: 7 },
        SessionEvent::Replanned {
            lane: 1,
            segments: 4,
        },
        SessionEvent::StallFlagged { lag_ms: 1_234 },
        SessionEvent::RecoveryStarted {
            lane: 0,
            attempt: 1,
        },
        SessionEvent::Recovered { attempt: 1 },
        SessionEvent::GaveUp { missing: 5 },
        SessionEvent::Completed { received: 16 },
    ];

    #[test]
    fn codes_are_unique_and_round_trip() {
        let mut seen = std::collections::HashSet::new();
        for ev in ALL {
            assert!(seen.insert(ev.code()), "duplicate code {}", ev.code());
            let (a, b) = ev.fields();
            assert_eq!(SessionEvent::decode(ev.code(), a, b), Some(*ev));
        }
    }

    #[test]
    fn unknown_codes_decode_to_none() {
        assert_eq!(SessionEvent::decode(0, 0, 0), None);
        assert_eq!(SessionEvent::decode(200, 1, 2), None);
    }

    #[test]
    fn display_is_grep_friendly() {
        let ev = SessionEvent::RecoveryStarted {
            lane: 2,
            attempt: 3,
        };
        assert_eq!(ev.to_string(), "recovery-started lane=2 attempt=3");
    }
}
