//! Sans-io driver for the §4.2 admission handshake, pipelined.
//!
//! [`AdmissionDriver`] owns the *protocol* half of a requesting peer's
//! admission round: which candidate lanes to contact, what each reply
//! means, when the round is decided, and which grants must be released.
//! The caller owns the *transport* half — connects, timers, feeding
//! decoded [`Message`]s back in — so the same state machine runs on the
//! epoll reactor (`p2ps-node`), under the deterministic simulator
//! (`p2ps-simnet`), and in plain unit tests.
//!
//! The paper's protocol contacts candidates *sequentially* in descending
//! class order, stopping once `R0` aggregate bandwidth is secured
//! ([`attempt_admission`](p2ps_core::admission::attempt_admission)).
//! This driver contacts **all** lanes concurrently and *commits*
//! decisions with a deterministic greedy fold over the same descending
//! class order that never reads past the first still-pending lane:
//!
//! * the moment the settled prefix secures `R0`, the round is
//!   **admitted** — later replies cannot change a prefix they come after;
//! * only when *every* lane has settled short of `R0` is the round
//!   **rejected** (with the same reminder selection, greedy-Ω over the
//!   busy-but-favored lanes).
//!
//! The fold makes the pipelined outcome *identical* to the sequential
//! protocol's on the same per-candidate responses (property-tested
//! below), while the wall-clock cost drops from Σ(RTT) to ~max(RTT) —
//! and a dead candidate burns only its own timeout, nobody else's.
//! The only observable difference is benign extra traffic: lanes past
//! the sequential stop point are contacted anyway, so their grants are
//! explicitly released (the supplier's reservation is freed immediately
//! instead of expiring).
//!
//! # Examples
//!
//! A two-candidate round where the first grant alone secures `R0`:
//!
//! ```
//! use p2ps_core::PeerClass;
//! use p2ps_proto::{AdmissionDriver, AdmissionVerdict, Message};
//!
//! let class1 = PeerClass::new(1).unwrap(); // offers R0 alone
//! let mut drv = AdmissionDriver::new(42, class1, &[class1, class1]);
//! drv.start();
//! // Both lanes get a StreamRequest at once.
//! let mut requests = 0;
//! while let Some(a) = drv.pop_action() {
//!     requests += 1;
//!     assert!(matches!(a, p2ps_proto::AdmissionAction::Send { .. }));
//! }
//! assert_eq!(requests, 2);
//! // The best lane grants: admitted without waiting for the other.
//! drv.on_message(0, &Message::Grant { session: 42, class: class1 });
//! assert_eq!(drv.verdict(), &AdmissionVerdict::Admitted { granted: vec![0] });
//! ```

use p2ps_core::admission::greedy_take;
use p2ps_core::{Bandwidth, PeerClass};

use crate::Message;

/// A transport instruction drained from the driver via
/// [`AdmissionDriver::pop_action`].
#[derive(Debug, Clone, PartialEq)]
pub enum AdmissionAction {
    /// Send `msg` on lane `lane`'s connection.
    Send {
        /// Candidate lane index (position in the candidate list).
        lane: usize,
        /// The message to put on the wire.
        msg: Message,
    },
    /// Close lane `lane`'s connection; the driver will say nothing more
    /// on it. Lanes in the admitted set are never closed — the caller
    /// hands them to the streaming session instead.
    Close {
        /// Candidate lane index.
        lane: usize,
    },
}

/// The round's current outcome.
#[derive(Debug, Clone, PartialEq)]
pub enum AdmissionVerdict {
    /// Not yet decided: at least one lane that could still change the
    /// greedy fold is awaiting its reply.
    Pending,
    /// `R0` secured: stream from `granted` (lane indices, descending
    /// class order). Their connections stay open.
    Admitted {
        /// Lanes whose grants were taken, in commitment order.
        granted: Vec<usize>,
    },
    /// Every lane settled and the fold came up short.
    Rejected {
        /// Aggregate bandwidth that had been secured (all released).
        secured: Bandwidth,
        /// Lanes left a reminder (greedy-Ω over busy-favored candidates).
        reminders: Vec<usize>,
    },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LaneState {
    /// StreamRequest sent (or about to be), no reply yet.
    Pending,
    /// Grant received; the supplier holds a reservation for us.
    Granted,
    /// Deny, protocol violation, connect failure, timeout, or peer close.
    Refused,
    /// Deny with `busy && favored`: a reminder may be left here.
    BusyFavored,
}

#[derive(Debug)]
struct Lane {
    /// The candidate's advertised class (orders the fold; its bandwidth
    /// is the offer, exactly as the sequential prober assumes).
    class: PeerClass,
    state: LaneState,
    /// A `Release` for this lane's grant has been emitted.
    released: bool,
    /// A `Close` for this lane has been emitted (or it joined the
    /// admitted set, which also ends the driver's interest).
    closed: bool,
}

/// Sans-io state machine for one pipelined admission round. The module
/// source's top-level comment walks through the protocol and the
/// pipelined-equals-sequential equivalence argument.
#[derive(Debug)]
pub struct AdmissionDriver {
    session: u64,
    class: PeerClass,
    lanes: Vec<Lane>,
    /// Lane indices in fold order: descending candidate class (ascending
    /// `class.get()`), ties broken by lane index (stable sort) — the
    /// exact contact order of the sequential prober.
    order: Vec<usize>,
    actions: Vec<AdmissionAction>,
    verdict: AdmissionVerdict,
}

impl AdmissionDriver {
    /// A driver for `session`, requesting as `class`, over one lane per
    /// candidate (index = position in `candidates`).
    pub fn new(session: u64, class: PeerClass, candidates: &[PeerClass]) -> Self {
        let mut order: Vec<usize> = (0..candidates.len()).collect();
        order.sort_by_key(|&i| candidates[i].get());
        AdmissionDriver {
            session,
            class,
            lanes: candidates
                .iter()
                .map(|&c| Lane {
                    class: c,
                    state: LaneState::Pending,
                    released: false,
                    closed: false,
                })
                .collect(),
            order,
            actions: Vec::new(),
            verdict: AdmissionVerdict::Pending,
        }
    }

    /// Emits the concurrent `StreamRequest` burst (one per lane) and
    /// settles immediately when there are no candidates at all.
    pub fn start(&mut self) {
        for lane in 0..self.lanes.len() {
            self.actions.push(AdmissionAction::Send {
                lane,
                msg: Message::StreamRequest {
                    session: self.session,
                    class: self.class,
                },
            });
        }
        self.resettle();
    }

    /// Feeds one decoded reply from lane `lane`. Unexpected messages
    /// (anything but `Grant`/`Deny` for this session) refuse the lane —
    /// a misbehaving candidate costs only itself.
    pub fn on_message(&mut self, lane: usize, msg: &Message) {
        let settled = match msg {
            Message::Grant { session, .. } if *session == self.session => LaneState::Granted,
            Message::Deny {
                session,
                busy,
                favored,
            } if *session == self.session => {
                if *busy && *favored {
                    LaneState::BusyFavored
                } else {
                    LaneState::Refused
                }
            }
            _ => LaneState::Refused,
        };
        self.settle_lane(lane, settled);
    }

    /// Reports a transport failure on lane `lane` — connect error, read
    /// timeout, peer close, decode error. The lane settles as refused;
    /// no further actions will be emitted for it.
    pub fn on_lane_error(&mut self, lane: usize) {
        if let Some(l) = self.lanes.get_mut(lane) {
            l.closed = true; // the transport is already gone
        }
        self.settle_lane(lane, LaneState::Refused);
    }

    fn settle_lane(&mut self, lane: usize, state: LaneState) {
        let Some(l) = self.lanes.get_mut(lane) else {
            return;
        };
        if l.state != LaneState::Pending {
            return; // each lane settles exactly once
        }
        l.state = state;
        if self.verdict == AdmissionVerdict::Pending {
            self.resettle();
        } else {
            // Late reply after the round was decided: clean the lane up
            // (release a late grant so the supplier's reservation frees
            // immediately) without touching the verdict.
            self.cleanup_lane(lane);
        }
    }

    /// Next transport instruction, if any.
    pub fn pop_action(&mut self) -> Option<AdmissionAction> {
        if self.actions.is_empty() {
            None
        } else {
            Some(self.actions.remove(0))
        }
    }

    /// The round's current outcome. Once non-`Pending` it never changes;
    /// late lane events only produce cleanup actions.
    pub fn verdict(&self) -> &AdmissionVerdict {
        &self.verdict
    }

    /// The greedy fold: walk lanes in descending class order, committing
    /// every decision the settled prefix makes final, and decide the
    /// round the moment it can no longer change.
    fn resettle(&mut self) {
        let mut secured = Bandwidth::ZERO;
        let mut granted: Vec<usize> = Vec::new();
        let mut busy_favored: Vec<usize> = Vec::new();
        let mut blocked = false;
        for pos in 0..self.order.len() {
            let i = self.order[pos];
            if secured.is_full_rate() {
                break; // the sequential prober stops contacting here
            }
            match self.lanes[i].state {
                LaneState::Pending => {
                    // Decisions for later lanes would depend on how this
                    // one settles: the fold stops, the round stays open.
                    blocked = true;
                    break;
                }
                LaneState::Granted => {
                    let offer = self.lanes[i].class.bandwidth();
                    if secured + offer <= Bandwidth::FULL_RATE {
                        secured += offer;
                        granted.push(i);
                    } else {
                        // Overshooting grant: released on the spot, just
                        // like the sequential prober. Final — it precedes
                        // the first pending lane.
                        self.release_and_close(i);
                    }
                }
                LaneState::Refused => self.close_lane(i),
                LaneState::BusyFavored => busy_favored.push(i),
            }
        }

        if secured.is_full_rate() {
            // Admitted. Everything outside the granted set is cleaned up;
            // still-pending lanes get their cleanup when they settle.
            for i in &granted {
                self.lanes[*i].closed = true; // ours now: no Close action
            }
            for i in 0..self.lanes.len() {
                if !granted.contains(&i) && self.lanes[i].state != LaneState::Pending {
                    self.cleanup_lane(i);
                }
            }
            self.verdict = AdmissionVerdict::Admitted { granted };
        } else if !blocked {
            // Every lane settled and R0 was not reached: release what was
            // secured, leave reminders with the greedy-Ω busy-favored
            // subset covering the shortfall, close everything.
            for &i in &granted {
                self.release_and_close(i);
            }
            let shortfall = Bandwidth::FULL_RATE - secured;
            let offers: Vec<Bandwidth> = busy_favored
                .iter()
                .map(|&i| self.lanes[i].class.bandwidth())
                .collect();
            let (chosen, _) = greedy_take(&offers, shortfall);
            let reminders: Vec<usize> = chosen.into_iter().map(|j| busy_favored[j]).collect();
            for &i in &busy_favored {
                if reminders.contains(&i) {
                    self.actions.push(AdmissionAction::Send {
                        lane: i,
                        msg: Message::Reminder {
                            session: self.session,
                            class: self.class,
                        },
                    });
                }
                self.close_lane(i);
            }
            self.verdict = AdmissionVerdict::Rejected { secured, reminders };
        }
        // else: blocked on a pending lane — stay Pending, commit nothing
        // beyond the prefix actions already emitted.
    }

    /// Post-verdict lane cleanup: release a grant we are not using,
    /// close the connection.
    fn cleanup_lane(&mut self, lane: usize) {
        if self.lanes[lane].state == LaneState::Granted {
            self.release_and_close(lane);
        } else {
            self.close_lane(lane);
        }
    }

    fn release_and_close(&mut self, lane: usize) {
        if !self.lanes[lane].released && !self.lanes[lane].closed {
            self.lanes[lane].released = true;
            self.actions.push(AdmissionAction::Send {
                lane,
                msg: Message::Release {
                    session: self.session,
                },
            });
        }
        self.close_lane(lane);
    }

    fn close_lane(&mut self, lane: usize) {
        if !self.lanes[lane].closed {
            self.lanes[lane].closed = true;
            self.actions.push(AdmissionAction::Close { lane });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p2ps_core::admission::{attempt_admission, Candidate, ProbeOutcome, RequestDecision};
    use proptest::prelude::*;

    fn class(k: u8) -> PeerClass {
        PeerClass::new(k).unwrap()
    }

    /// Scripted sequential candidate: replays a fixed decision, records
    /// the calls, for driving `attempt_admission` as the reference.
    struct Scripted {
        class: PeerClass,
        decision: RequestDecision,
        contacted: bool,
    }

    impl Candidate for Scripted {
        fn class(&self) -> PeerClass {
            self.class
        }
        fn request(&mut self, _class: PeerClass) -> RequestDecision {
            self.contacted = true;
            self.decision
        }
        fn leave_reminder(&mut self, _class: PeerClass) {}
        fn release(&mut self) {}
    }

    /// Replays `decisions` into the driver in `arrival` order and
    /// returns the final verdict.
    fn drive(
        session: u64,
        req: PeerClass,
        lanes: &[(PeerClass, RequestDecision)],
        arrival: &[usize],
    ) -> AdmissionVerdict {
        let classes: Vec<PeerClass> = lanes.iter().map(|l| l.0).collect();
        let mut drv = AdmissionDriver::new(session, req, &classes);
        drv.start();
        for &lane in arrival {
            match lanes[lane].1 {
                RequestDecision::Granted => drv.on_message(
                    lane,
                    &Message::Grant {
                        session,
                        class: lanes[lane].0,
                    },
                ),
                RequestDecision::Refused => drv.on_lane_error(lane),
                RequestDecision::Busy { favored } => drv.on_message(
                    lane,
                    &Message::Deny {
                        session,
                        busy: true,
                        favored,
                    },
                ),
            }
        }
        drv.verdict().clone()
    }

    fn reference(req: PeerClass, lanes: &[(PeerClass, RequestDecision)]) -> ProbeOutcome {
        let mut cands: Vec<Scripted> = lanes
            .iter()
            .map(|&(class, decision)| Scripted {
                class,
                decision,
                contacted: false,
            })
            .collect();
        attempt_admission(req, &mut cands)
    }

    fn assert_equivalent(verdict: AdmissionVerdict, outcome: ProbeOutcome) {
        match (verdict, outcome) {
            (AdmissionVerdict::Admitted { granted: a }, ProbeOutcome::Admitted { granted: b }) => {
                assert_eq!(a, b)
            }
            (
                AdmissionVerdict::Rejected {
                    secured: sa,
                    reminders: ra,
                },
                ProbeOutcome::Rejected {
                    secured: sb,
                    reminders: rb,
                },
            ) => {
                assert_eq!(sa, sb);
                assert_eq!(ra, rb);
            }
            (v, o) => panic!("pipelined {v:?} != sequential {o:?}"),
        }
    }

    #[test]
    fn single_class1_grant_admits_immediately() {
        let lanes = [(class(1), RequestDecision::Granted)];
        let v = drive(7, class(2), &lanes, &[0]);
        assert_eq!(v, AdmissionVerdict::Admitted { granted: vec![0] });
    }

    #[test]
    fn admits_on_settled_prefix_before_slow_lane_replies() {
        // Lane 1 (class 1, best) grants; lane 0 (class 3) never replies.
        // Fold order is [1, 0]: the prefix secures R0 with lane 1 alone,
        // so the verdict must not wait for lane 0.
        let classes = [class(3), class(1)];
        let mut drv = AdmissionDriver::new(9, class(2), &classes);
        drv.start();
        drv.on_message(
            1,
            &Message::Grant {
                session: 9,
                class: class(1),
            },
        );
        assert_eq!(
            drv.verdict(),
            &AdmissionVerdict::Admitted { granted: vec![1] }
        );
        // The slow lane's eventual grant is released, not adopted.
        while drv.pop_action().is_some() {}
        drv.on_message(
            0,
            &Message::Grant {
                session: 9,
                class: class(3),
            },
        );
        let mut acts = Vec::new();
        while let Some(a) = drv.pop_action() {
            acts.push(a);
        }
        assert_eq!(
            acts,
            vec![
                AdmissionAction::Send {
                    lane: 0,
                    msg: Message::Release { session: 9 }
                },
                AdmissionAction::Close { lane: 0 },
            ]
        );
        assert_eq!(
            drv.verdict(),
            &AdmissionVerdict::Admitted { granted: vec![1] },
            "late grant must not change a decided round"
        );
    }

    #[test]
    fn worse_lane_settling_first_cannot_decide_the_round() {
        // Fold order [best=1, worst=0]: the worst lane's grant arriving
        // first must NOT admit while the better lane is pending, because
        // the sequential prober would have taken the better grant first.
        let classes = [class(4), class(2)];
        let mut drv = AdmissionDriver::new(5, class(2), &classes);
        drv.start();
        drv.on_message(
            0,
            &Message::Grant {
                session: 5,
                class: class(4),
            },
        );
        assert_eq!(drv.verdict(), &AdmissionVerdict::Pending);
        drv.on_message(
            1,
            &Message::Grant {
                session: 5,
                class: class(2),
            },
        );
        // class 2 offers R0/2, class 4 offers R0/8: both taken, still
        // short of R0 -> rejected with both grants released.
        match drv.verdict() {
            AdmissionVerdict::Rejected { secured, reminders } => {
                assert!(!secured.is_full_rate());
                assert!(reminders.is_empty());
            }
            v => panic!("expected rejection, got {v:?}"),
        }
    }

    #[test]
    fn rejection_releases_grants_and_leaves_reminders() {
        let lanes = [
            (class(2), RequestDecision::Granted),
            (class(2), RequestDecision::Busy { favored: true }),
            (class(3), RequestDecision::Busy { favored: false }),
        ];
        let v = drive(3, class(1), &lanes, &[0, 1, 2]);
        assert_equivalent(v.clone(), reference(class(1), &lanes));
        match v {
            AdmissionVerdict::Rejected { reminders, .. } => {
                assert_eq!(reminders, vec![1], "busy-favored lane gets the reminder");
            }
            v => panic!("expected rejection, got {v:?}"),
        }
    }

    #[test]
    fn empty_candidate_list_rejects_at_start() {
        let mut drv = AdmissionDriver::new(1, class(2), &[]);
        drv.start();
        assert_eq!(
            drv.verdict(),
            &AdmissionVerdict::Rejected {
                secured: Bandwidth::ZERO,
                reminders: vec![]
            }
        );
    }

    #[test]
    fn actions_never_target_the_admitted_set() {
        // 2 + 2 classes secure R0 together; the rest must be cleaned up.
        let lanes = [
            (class(2), RequestDecision::Granted),
            (class(2), RequestDecision::Granted),
            (class(2), RequestDecision::Granted),
            (class(4), RequestDecision::Refused),
        ];
        let classes: Vec<PeerClass> = lanes.iter().map(|l| l.0).collect();
        let mut drv = AdmissionDriver::new(8, class(1), &classes);
        drv.start();
        let mut actions = Vec::new();
        while drv.pop_action().is_some() {} // discard the request burst
        for (lane, (cls, decision)) in lanes.iter().enumerate() {
            match decision {
                RequestDecision::Granted => drv.on_message(
                    lane,
                    &Message::Grant {
                        session: 8,
                        class: *cls,
                    },
                ),
                _ => drv.on_lane_error(lane),
            }
            while let Some(a) = drv.pop_action() {
                actions.push(a);
            }
        }
        let granted = match drv.verdict() {
            AdmissionVerdict::Admitted { granted } => granted.clone(),
            v => panic!("expected admission, got {v:?}"),
        };
        assert_eq!(granted, vec![0, 1]);
        for a in &actions {
            let lane = match a {
                AdmissionAction::Send { lane, .. } | AdmissionAction::Close { lane } => *lane,
            };
            assert!(
                !granted.contains(&lane),
                "action {a:?} targets an admitted lane"
            );
        }
        // The extra grant (lane 2) was released; the dead lane closed
        // by its own transport gets no redundant Close.
        assert!(actions.contains(&AdmissionAction::Send {
            lane: 2,
            msg: Message::Release { session: 8 }
        }));
        assert!(!actions.contains(&AdmissionAction::Close { lane: 3 }));
    }

    fn decision_strategy() -> impl Strategy<Value = RequestDecision> {
        prop_oneof![
            Just(RequestDecision::Granted),
            Just(RequestDecision::Refused),
            Just(RequestDecision::Busy { favored: true }),
            Just(RequestDecision::Busy { favored: false }),
        ]
    }

    proptest! {
        /// The tentpole equivalence: on identical per-candidate
        /// responses, the pipelined fold returns exactly the sequential
        /// prober's outcome — for every candidate mix and every arrival
        /// order of the replies.
        #[test]
        fn pipelined_outcome_equals_sequential(
            lanes in prop::collection::vec(
                (1u8..=4u8, decision_strategy()), 0..12),
            req_class in 1u8..=4u8,
            arrival_seed in any::<u64>(),
        ) {
            let lanes: Vec<(PeerClass, RequestDecision)> = lanes
                .into_iter()
                .map(|(k, d)| (class(k), d))
                .collect();
            // Seed-derived arrival permutation (Fisher-Yates).
            let mut arrival: Vec<usize> = (0..lanes.len()).collect();
            let mut state = arrival_seed | 1;
            for i in (1..arrival.len()).rev() {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let j = (state >> 33) as usize % (i + 1);
                arrival.swap(i, j);
            }
            let verdict = drive(11, class(req_class), &lanes, &arrival);
            assert_equivalent(verdict, reference(class(req_class), &lanes));
        }
    }
}
