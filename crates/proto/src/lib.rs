//! Wire protocol for the `p2ps` peer node.
//!
//! Peers and the directory server exchange length-prefixed binary frames.
//! The codec is hand-rolled on top of [`bytes`] — no serialization
//! framework — so the byte layout is explicit, stable and cheap to parse:
//!
//! ```text
//! frame  := len:u32le  body
//! body   := tag:u8     fields…       (layout per message, see `Message`)
//! ```
//!
//! Framing is **sans-io**: [`FrameDecoder`] and [`FrameEncoder`] hold the
//! protocol half of a connection (accumulation, frame boundaries,
//! zero-copy payload views) for any transport — the blocking
//! [`read_message`]/[`write_message`] helpers and the `p2ps-net` reactor
//! handlers are both thin shims over them.
//!
//! The message set covers the three planes of the paper's protocol:
//!
//! * **Lookup** — register with / query the directory (`Register`,
//!   `QueryCandidates`, `Candidates`).
//! * **Admission** — the `DACp2p` handshake (`StreamRequest`, `Grant`,
//!   `Deny`, `Release`, `Reminder`).
//! * **Streaming** — session setup and paced segment delivery
//!   (`StartSession`, `SegmentData`, `EndSession`).
//!
//! # Examples
//!
//! ```
//! use bytes::BytesMut;
//! use p2ps_proto::{decode_frame, encode_frame, Message};
//! use p2ps_core::PeerClass;
//!
//! let msg = Message::StreamRequest { session: 42, class: PeerClass::new(2)? };
//! let mut buf = BytesMut::new();
//! encode_frame(&msg, &mut buf);
//! let decoded = decode_frame(&mut buf)?.expect("complete frame");
//! assert_eq!(decoded, msg);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod admission;
mod chunks;
mod codec;
mod error;
mod event;
mod message;
mod requester;
mod sansio;
mod supplier;

pub use admission::{AdmissionAction, AdmissionDriver, AdmissionVerdict};
pub use chunks::{ChunkQueue, MAX_GATHER_SLICES};
pub use codec::{decode_frame, encode_frame, read_message, write_message, MAX_FRAME_LEN};
pub use error::DecodeError;
pub use event::SessionEvent;
pub use message::{CandidateRecord, Message, SessionPlan};
pub use requester::{RequesterSession, SessionPhase};
pub use sansio::{FrameDecoder, FrameEncoder};
pub use supplier::{ScheduleError, SupplierSchedule};
