//! Pins the allocation-free steady receive path: once a `FrameDecoder`
//! has warmed up, decoding a `SegmentData` frame whose payload the
//! consumer drops performs **zero** heap allocations — the accumulator
//! keeps its capacity and the frame buffer is recycled in place by the
//! decoder's `BytesPool`.
//!
//! This file deliberately contains exactly ONE test: the counting
//! allocator below is process-global, and the default test harness runs
//! tests on several threads, so any sibling test in the same binary
//! would pollute the count.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use bytes::Bytes;
use p2ps_proto::{FrameDecoder, FrameEncoder, Message};

/// System allocator wrapper counting every allocation (and reallocation)
/// on this thread's behalf — relaxed atomics, no locking.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static A: CountingAlloc = CountingAlloc;

#[test]
fn steady_segment_data_decode_allocates_nothing() {
    const PAYLOAD: usize = 16 * 1024;
    const WARMUP: u64 = 32;
    const MEASURED: u64 = 256;

    // Pre-encode one frame per index on the supplier side; the wire
    // bytes are reused so the measured loop exercises only the decoder.
    let payload = Bytes::from(vec![0xabu8; PAYLOAD]);
    let mut wire = Vec::new();
    {
        let mut enc = FrameEncoder::new();
        enc.push(&Message::SegmentData {
            session: 7,
            index: 0,
            payload: payload.clone(),
        });
        while let Some(chunk) = enc.pop_chunk() {
            wire.extend_from_slice(&chunk);
        }
    }

    let mut dec = FrameDecoder::new();
    let decode_one = |dec: &mut FrameDecoder| {
        // Feed in two fragments so the tightly-sized fast path (which
        // donates the accumulator) never triggers: this is the reactor
        // shape, arbitrary fragmentation into a long-lived accumulator.
        dec.feed(&wire[..10]);
        dec.feed(&wire[10..]);
        let msg = dec.poll().unwrap().expect("one whole frame was fed");
        match msg {
            Message::SegmentData { payload, .. } => assert_eq!(payload.len(), PAYLOAD),
            other => panic!("unexpected message {other:?}"),
        }
        // The payload view drops here: the pool slot is free again.
    };

    for _ in 0..WARMUP {
        decode_one(&mut dec);
    }

    let before = ALLOCS.load(Ordering::Relaxed);
    for _ in 0..MEASURED {
        decode_one(&mut dec);
    }
    let delta = ALLOCS.load(Ordering::Relaxed) - before;
    assert_eq!(
        delta, 0,
        "steady-path decode of {MEASURED} SegmentData frames allocated {delta} times \
         (must be zero: accumulator and pool slot are both recycled)"
    );
}
