//! `FrameDecoder` must be split-invariant: however a byte stream is cut
//! into chunks — at every single byte boundary, or at seeded random
//! ones — the decoded message sequence is identical to the whole-stream
//! decode. The simulation harness (`p2ps-simnet`) leans on exactly this
//! property when it fragments wire traffic at arbitrary boundaries, so
//! it is pinned here directly against the codec.

use bytes::{Bytes, BytesMut};
use proptest::prelude::*;

use p2ps_core::{PeerClass, PeerId};
use p2ps_proto::{encode_frame, CandidateRecord, FrameDecoder, Message, SessionPlan};

/// A stream touching every message family: lookup, admission and
/// streaming plane, with string, list, plan and payload field shapes.
fn sample_messages(payload: &[u8]) -> Vec<Message> {
    vec![
        Message::Register {
            item: "movie".into(),
            peer: PeerId::new(7),
            class: PeerClass::new(2).unwrap(),
            port: 9000,
        },
        Message::QueryCandidates {
            item: "movie".into(),
            m: 5,
        },
        Message::Candidates {
            list: vec![
                CandidateRecord {
                    id: PeerId::new(1),
                    class: PeerClass::HIGHEST,
                    port: 9001,
                },
                CandidateRecord {
                    id: PeerId::new(2),
                    class: PeerClass::new(3).unwrap(),
                    port: 9002,
                },
            ],
        },
        Message::StreamRequest {
            session: 0xfeed,
            class: PeerClass::new(4).unwrap(),
        },
        Message::Grant {
            session: 0xfeed,
            class: PeerClass::new(2).unwrap(),
        },
        Message::Deny {
            session: 0xfeed,
            busy: true,
            favored: false,
        },
        Message::Reminder {
            session: 0xfeed,
            class: PeerClass::new(4).unwrap(),
        },
        Message::StartSession {
            session: 0xfeed,
            plan: SessionPlan {
                item: "movie".into(),
                segments: vec![0, 3],
                period: 4,
                total_segments: 16,
                dt_ms: 10,
            },
        },
        Message::SegmentData {
            session: 0xfeed,
            index: 3,
            payload: Bytes::from(payload.to_vec()),
        },
        Message::Release { session: 0xfeed },
        Message::EndSession { session: 0xfeed },
    ]
}

/// Encodes `msgs` back to back into one contiguous byte stream.
fn wire(msgs: &[Message]) -> Vec<u8> {
    let mut buf = BytesMut::new();
    for m in msgs {
        encode_frame(m, &mut buf);
    }
    buf.to_vec()
}

/// Feeds `stream` to a fresh decoder in the given chunks and returns
/// every decoded message, asserting no decode error and no leftovers.
fn decode_chunked(stream: &[u8], chunks: impl Iterator<Item = usize>) -> Vec<Message> {
    let mut dec = FrameDecoder::new();
    let mut out = Vec::new();
    let mut at = 0;
    for len in chunks {
        let end = (at + len).min(stream.len());
        dec.feed(&stream[at..end]);
        at = end;
        while let Some(msg) = dec.poll().expect("valid stream must decode") {
            out.push(msg);
        }
    }
    assert_eq!(at, stream.len(), "every byte fed");
    assert_eq!(dec.buffered(), 0, "no partial frame left behind");
    out
}

#[test]
fn every_split_point_of_a_multi_message_stream_decodes_identically() {
    let msgs = sample_messages(b"segment payload bytes \x00\xff\x7f");
    let stream = wire(&msgs);
    // One cut at every byte boundary, including the degenerate
    // empty-first-chunk and empty-second-chunk splits.
    for cut in 0..=stream.len() {
        let got = decode_chunked(&stream, [cut, stream.len() - cut].into_iter());
        assert_eq!(got, msgs, "split at byte {cut} changed the decode");
    }
}

#[test]
fn one_byte_at_a_time_decodes_identically() {
    let msgs = sample_messages(&[0xaa; 63]);
    let stream = wire(&msgs);
    let got = decode_chunked(&stream, std::iter::repeat_n(1, stream.len()));
    assert_eq!(got, msgs);
}

proptest! {
    /// Seeded random chunkings of a randomized-payload stream: any
    /// partition of the wire bytes decodes to the same messages.
    #[test]
    fn random_chunk_splits_are_decode_invariant(
        payload in prop::collection::vec(any::<u8>(), 0..200),
        sizes in prop::collection::vec(1usize..48, 1..128),
    ) {
        let msgs = sample_messages(&payload);
        let stream = wire(&msgs);
        // Cycle the drawn sizes until the stream is exhausted.
        let mut cuts = Vec::new();
        let mut covered = 0;
        for len in sizes.iter().cycle() {
            if covered >= stream.len() {
                break;
            }
            cuts.push(*len);
            covered += len;
        }
        let got = decode_chunked(&stream, cuts.into_iter());
        prop_assert_eq!(got, msgs);
    }
}
