//! Golden-byte tests pinning the wire format.
//!
//! The codec is hand-rolled, so nothing but these tests guarantees that a
//! refactor keeps old and new nodes interoperable. Every message's exact
//! byte layout is asserted against a hex golden value; if one of these
//! fails, the change broke protocol compatibility.

use bytes::{Bytes, BytesMut};
use p2ps_core::{PeerClass, PeerId};
use p2ps_proto::{decode_frame, encode_frame, CandidateRecord, Message, SessionPlan};

fn hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

fn encoded(msg: &Message) -> Vec<u8> {
    let mut buf = BytesMut::new();
    encode_frame(msg, &mut buf);
    buf.to_vec()
}

#[track_caller]
fn assert_golden(msg: Message, expected_hex: &str) {
    let bytes = encoded(&msg);
    assert_eq!(
        hex(&bytes),
        expected_hex,
        "wire layout changed for {}",
        msg.name()
    );
    // and the golden bytes still decode to the message
    let mut buf = BytesMut::from(&bytes[..]);
    assert_eq!(decode_frame(&mut buf).unwrap().unwrap(), msg);
}

#[test]
fn register_layout() {
    assert_golden(
        Message::Register {
            item: "v".into(),
            peer: PeerId::new(2),
            class: PeerClass::new(3).unwrap(),
            port: 0x1234,
        },
        // len=15 | tag 01 | strlen 0100 | 'v' | peer u64le | class 03 | port 3412
        "0f000000010100760200000000000000033412",
    );
}

#[test]
fn query_candidates_layout() {
    assert_golden(
        Message::QueryCandidates {
            item: "v".into(),
            m: 8,
        },
        "06000000020100760800",
    );
}

#[test]
fn candidates_layout() {
    assert_golden(
        Message::Candidates {
            list: vec![CandidateRecord {
                id: PeerId::new(1),
                class: PeerClass::new(2).unwrap(),
                port: 0x00ff,
            }],
        },
        // len=14 | tag 03 | count 0100 | id u64le | class 02 | port ff00
        "0e000000030100010000000000000002ff00",
    );
}

#[test]
fn stream_request_layout() {
    assert_golden(
        Message::StreamRequest {
            session: 0x0102030405060708,
            class: PeerClass::new(4).unwrap(),
        },
        // len=10 | tag 10 | session u64le | class 04
        "0a000000100807060504030201 04".replace(' ', "").as_str(),
    );
}

#[test]
fn grant_layout() {
    assert_golden(
        Message::Grant {
            session: 1,
            class: PeerClass::new(1).unwrap(),
        },
        "0a00000011010000000000000001",
    );
}

#[test]
fn deny_flag_packing() {
    // busy -> bit 0, favored -> bit 1
    let cases = [
        (false, false, "00"),
        (true, false, "01"),
        (false, true, "02"),
        (true, true, "03"),
    ];
    for (busy, favored, flags) in cases {
        let bytes = encoded(&Message::Deny {
            session: 0,
            busy,
            favored,
        });
        assert_eq!(
            hex(&bytes),
            format!("0a000000120000000000000000{flags}"),
            "busy={busy} favored={favored}"
        );
    }
}

#[test]
fn release_and_reminder_and_end_layout() {
    assert_eq!(
        hex(&encoded(&Message::Release { session: 2 })),
        "09000000130200000000000000"
    );
    assert_eq!(
        hex(&encoded(&Message::Reminder {
            session: 2,
            class: PeerClass::new(1).unwrap(),
        })),
        "0a00000014020000000000000001"
    );
    assert_eq!(
        hex(&encoded(&Message::EndSession { session: 2 })),
        "09000000220200000000000000"
    );
}

#[test]
fn start_session_layout() {
    let bytes = encoded(&Message::StartSession {
        session: 1,
        plan: SessionPlan {
            item: "v".into(),
            segments: vec![0, 7],
            period: 8,
            total_segments: 16,
            dt_ms: 1000,
        },
    });
    assert_eq!(
        hex(&bytes),
        concat!(
            "28000000",         // len = 40
            "20",               // tag
            "0100000000000000", // session
            "010076",           // item "v"
            "02000000",         // 2 segments
            "00000000",
            "07000000",
            "08000000",         // period
            "1000000000000000", // total = 16
            "e8030000"          // dt_ms = 1000
        )
    );
}

#[test]
fn segment_data_layout() {
    let bytes = encoded(&Message::SegmentData {
        session: 1,
        index: 2,
        payload: Bytes::from_static(b"\xAA\xBB"),
    });
    assert_eq!(
        hex(&bytes),
        concat!(
            "17000000", // len = 23
            "21",
            "0100000000000000",
            "0200000000000000",
            "02000000",
            "aabb"
        )
    );
}

#[test]
fn length_prefix_is_little_endian_body_length() {
    for msg in [
        Message::Release { session: 0 },
        Message::EndSession { session: u64::MAX },
    ] {
        let bytes = encoded(&msg);
        let len = u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]) as usize;
        assert_eq!(len, bytes.len() - 4);
    }
}
