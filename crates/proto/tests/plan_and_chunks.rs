//! Edge-case units for the two small shared engines the whole stack
//! leans on: `SessionPlan`'s wire expansion rule
//! (`expanded`/`is_explicit`) and `ChunkQueue`'s partial-advance
//! arithmetic around the 16-slice gather limit.

use std::io::IoSlice;

use bytes::Bytes;

use p2ps_proto::{ChunkQueue, SessionPlan, MAX_GATHER_SLICES};

fn plan(segments: Vec<u32>, period: u32, total: u64) -> SessionPlan {
    SessionPlan {
        item: "clip".into(),
        segments,
        period,
        total_segments: total,
        dt_ms: 10,
    }
}

// ---- SessionPlan::expanded / is_explicit -------------------------------

#[test]
fn empty_plan_expands_to_nothing() {
    let p = plan(vec![], 4, 16);
    assert_eq!(p.expanded().count(), 0);
    assert_eq!(p.nth_segment(0), None);
}

#[test]
fn explicit_plan_yields_segments_once_verbatim() {
    // period == total_segments ⇒ explicit one-shot plan.
    let p = plan(vec![2, 5, 11], 16, 16);
    assert!(p.is_explicit());
    assert_eq!(p.expanded().collect::<Vec<_>>(), vec![2, 5, 11]);
}

#[test]
fn periodic_plan_repeats_with_period_offsets_until_total() {
    // Class-2 share of a 10-segment file: segment 1 of every period of 4.
    let p = plan(vec![1, 2], 4, 10);
    assert!(!p.is_explicit());
    assert_eq!(p.expanded().collect::<Vec<_>>(), vec![1, 2, 5, 6, 9]);
}

#[test]
fn expansion_ends_at_first_out_of_range_segment() {
    // Period 4 over 6 segments: the second period's `4 + 3 = 7` is out of
    // range and ends the session even though `4 + 1 = 5` would fit after.
    let p = plan(vec![3, 1], 4, 6);
    assert_eq!(p.expanded().collect::<Vec<_>>(), vec![3, 1]);
}

#[test]
fn single_segment_plan_strides_by_period() {
    let p = plan(vec![0], 2, 7);
    assert_eq!(p.expanded().collect::<Vec<_>>(), vec![0, 2, 4, 6]);
}

#[test]
fn zero_total_segments_is_explicit_for_period_one() {
    // `is_explicit` floors the file length at one segment, so the
    // degenerate empty-file plan (period 1, total 0) counts as explicit
    // and expands to nothing.
    let p = plan(vec![0], 1, 0);
    assert!(p.is_explicit());
    assert_eq!(p.expanded().count(), 0);
}

#[test]
fn is_explicit_is_exact_on_the_period() {
    assert!(plan(vec![0], 8, 8).is_explicit());
    assert!(!plan(vec![0], 4, 8).is_explicit());
    assert!(!plan(vec![0], 16, 8).is_explicit());
}

// ---- ChunkQueue partial advance around the gather limit ----------------

fn queue_of(parts: &[&[u8]]) -> ChunkQueue {
    let mut q = ChunkQueue::new();
    for p in parts {
        q.push(Bytes::from(p.to_vec()));
    }
    q
}

#[test]
fn advance_zero_on_empty_queue_is_a_no_op() {
    let mut q = ChunkQueue::new();
    q.advance(0);
    assert!(q.is_empty());
    assert_eq!(q.pending_bytes(), 0);
}

#[test]
fn single_chunk_advances_byte_by_byte() {
    let mut q = queue_of(&[b"abcde"]);
    for left in (0..5usize).rev() {
        q.advance(1);
        assert_eq!(q.pending_bytes(), left);
    }
    assert!(q.is_empty());
}

#[test]
fn partial_advance_straddling_a_chunk_boundary() {
    let mut q = queue_of(&[b"abc", b"defg"]);
    // Consume the whole front chunk plus one byte of the next in one go.
    q.advance(4);
    assert_eq!(q.pending_bytes(), 3);
    let mut slices = [IoSlice::new(&[]); MAX_GATHER_SLICES];
    let n = q.gather(&mut slices);
    assert_eq!(n, 1);
    assert_eq!(&slices[0][..], b"efg");
}

#[test]
fn gather_caps_at_sixteen_slices_and_wraps_on_advance() {
    // 20 one-byte chunks: a full vectored write gathers only the first
    // 16; advancing past them exposes the remaining 4 on the next pass —
    // the wrap the reactor's flush loop performs.
    let mut q = ChunkQueue::new();
    for i in 0..20u8 {
        q.push(Bytes::from(vec![i]));
    }
    let mut slices = [IoSlice::new(&[]); MAX_GATHER_SLICES];
    let first = q.gather(&mut slices);
    assert_eq!(first, MAX_GATHER_SLICES);
    let gathered: usize = slices[..first].iter().map(|s| s.len()).sum();
    q.advance(gathered);
    assert_eq!(q.pending_bytes(), 4);

    let mut slices = [IoSlice::new(&[]); MAX_GATHER_SLICES];
    let second = q.gather(&mut slices);
    assert_eq!(second, 4);
    let tail: Vec<u8> = slices[..second].iter().map(|s| s[0]).collect();
    assert_eq!(tail, vec![16, 17, 18, 19]);
}

#[test]
fn partial_advance_inside_the_gather_window() {
    // A short write that lands mid-chunk: whole front chunks go, the
    // split chunk's tail stays at the front of the next gather.
    let mut q = queue_of(&[b"aa", b"bb", b"cc", b"dd"]);
    q.advance(5); // "aa" + "bb" + first byte of "cc"
    assert_eq!(q.pending_bytes(), 3);
    let mut slices = [IoSlice::new(&[]); MAX_GATHER_SLICES];
    let n = q.gather(&mut slices);
    assert_eq!(n, 2);
    assert_eq!(&slices[0][..], b"c");
    assert_eq!(&slices[1][..], b"dd");
}

#[test]
fn empty_chunks_are_invisible_to_gather_but_swept_by_advance() {
    let mut q = ChunkQueue::new();
    q.push(Bytes::new());
    q.push(Bytes::from(vec![1]));
    q.push(Bytes::new());
    q.push(Bytes::from(vec![2]));
    let mut slices = [IoSlice::new(&[]); MAX_GATHER_SLICES];
    let n = q.gather(&mut slices);
    assert_eq!(n, 2, "gather skips empty chunks");
    q.advance(1);
    // The leading empty, the consumed chunk and the empty behind it are
    // all gone; only the last byte remains.
    assert_eq!(q.pop().unwrap(), Bytes::from(vec![2]));
    assert!(q.is_empty());
}
