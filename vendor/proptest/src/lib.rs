//! Offline vendored subset of the `proptest` API.
//!
//! The build environment has no access to crates.io, so this crate
//! re-implements the property-testing surface the workspace uses:
//! the [`Strategy`] trait with `prop_map` and `boxed`, range / tuple /
//! regex-string strategies, `prop::collection::{vec, hash_set}`,
//! `prop::sample::Index`, `prop::option::of`, [`any`], [`ProptestConfig`]
//! and the `proptest!` / `prop_assert!` / `prop_assert_eq!` /
//! `prop_assume!` / `prop_oneof!` macros.
//!
//! Semantics: each `#[test]` runs `ProptestConfig::cases` random cases
//! from a generator seeded deterministically from the test name, so
//! failures always reproduce. There is no shrinking — the failing
//! assertion message carries the offending values instead.

#![forbid(unsafe_code)]

use std::fmt::Debug;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

use rand::rngs::SmallRng;
use rand::{Rng, RngCore};

/// The generator driving every strategy.
pub type TestRng = SmallRng;

/// Seeds the per-test generator from the test's name (FNV-1a), keeping
/// runs deterministic and independent across tests.
#[doc(hidden)]
pub fn rng_for_test(name: &str) -> TestRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    rand::SeedableRng::seed_from_u64(h)
}

/// Per-block configuration, settable via
/// `#![proptest_config(ProptestConfig::with_cases(n))]`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A recipe for generating random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value: Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        O: Debug,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Erases the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

trait DynStrategy<T> {
    fn dyn_generate(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn dyn_generate(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased strategy (see [`Strategy::boxed`]).
pub struct BoxedStrategy<T>(Box<dyn DynStrategy<T>>);

impl<T: Debug> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.dyn_generate(rng)
    }
}

/// The [`Strategy::prop_map`] adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    O: Debug,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// A uniform choice between boxed alternatives (see `prop_oneof!`).
pub struct Union<T>(Vec<BoxedStrategy<T>>);

impl<T: Debug> Union<T> {
    /// Builds a union over `alternatives` (must be non-empty).
    pub fn new(alternatives: Vec<BoxedStrategy<T>>) -> Self {
        assert!(
            !alternatives.is_empty(),
            "prop_oneof! needs at least one arm"
        );
        Union(alternatives)
    }
}

impl<T: Debug> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.gen_range(0..self.0.len());
        self.0[i].generate(rng)
    }
}

/// A strategy that always yields clones of one value.
#[derive(Clone, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {
        $(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*
    };
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {
        $(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*
    };
}

float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($s:ident $idx:tt),+);)*) => {
        $(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*
    };
}

tuple_strategy! {
    (A 0);
    (A 0, B 1);
    (A 0, B 1, C 2);
    (A 0, B 1, C 2, D 3);
    (A 0, B 1, C 2, D 3, E 4);
    (A 0, B 1, C 2, D 3, E 4, F 5);
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6);
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7);
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7, I 8);
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7, I 8, J 9);
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7, I 8, J 9, K 10);
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7, I 8, J 9, K 10, L 11);
}

mod regex;

impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        regex::generate_matching(self, rng)
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized + Debug {
    /// Draws an unconstrained random value.
    fn arbitrary_value(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {
        $(
            impl Arbitrary for $t {
                fn arbitrary_value(rng: &mut TestRng) -> Self {
                    rng.gen::<$t>()
                }
            }
        )*
    };
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool, f32, f64);

impl Arbitrary for prop::sample::Index {
    fn arbitrary_value(rng: &mut TestRng) -> Self {
        prop::sample::Index::from_raw(rng.next_u64() as usize)
    }
}

/// The `any::<T>()` strategy.
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary_value(rng)
    }
}

/// Generates any value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Combinator namespace, mirroring `proptest::prelude::prop`.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use std::collections::HashSet;
        use std::hash::Hash;
        use std::ops::{Range, RangeInclusive};

        use super::super::{Debug, Rng, Strategy, TestRng};

        /// Number-of-elements specification for collection strategies.
        #[derive(Clone, Debug)]
        pub struct SizeRange {
            lo: usize,
            hi_inclusive: usize,
        }

        impl SizeRange {
            fn pick(&self, rng: &mut TestRng) -> usize {
                rng.gen_range(self.lo..=self.hi_inclusive)
            }
        }

        impl From<Range<usize>> for SizeRange {
            fn from(r: Range<usize>) -> Self {
                assert!(r.start < r.end, "empty size range");
                SizeRange {
                    lo: r.start,
                    hi_inclusive: r.end - 1,
                }
            }
        }

        impl From<RangeInclusive<usize>> for SizeRange {
            fn from(r: RangeInclusive<usize>) -> Self {
                let (lo, hi) = r.into_inner();
                assert!(lo <= hi, "empty size range");
                SizeRange {
                    lo,
                    hi_inclusive: hi,
                }
            }
        }

        impl From<usize> for SizeRange {
            fn from(n: usize) -> Self {
                SizeRange {
                    lo: n,
                    hi_inclusive: n,
                }
            }
        }

        /// A strategy producing `Vec`s of `element` values.
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        /// Generates vectors with lengths drawn from `size`.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let n = self.size.pick(rng);
                (0..n).map(|_| self.element.generate(rng)).collect()
            }
        }

        /// A strategy producing `HashSet`s of `element` values.
        pub struct HashSetStrategy<S> {
            element: S,
            size: SizeRange,
        }

        /// Generates hash sets with sizes drawn from `size`. The element
        /// domain must be large enough to reach the requested size.
        pub fn hash_set<S>(element: S, size: impl Into<SizeRange>) -> HashSetStrategy<S>
        where
            S: Strategy,
            S::Value: Eq + Hash,
        {
            HashSetStrategy {
                element,
                size: size.into(),
            }
        }

        impl<S> Strategy for HashSetStrategy<S>
        where
            S: Strategy,
            S::Value: Eq + Hash,
        {
            type Value = HashSet<S::Value>;

            fn generate(&self, rng: &mut TestRng) -> HashSet<S::Value> {
                let n = self.size.pick(rng);
                let mut set = HashSet::with_capacity(n);
                // Collisions retry; bail out after a generous budget so a
                // too-small element domain degrades instead of hanging.
                let mut budget = 100 * (n + 1);
                while set.len() < n && budget > 0 {
                    set.insert(self.element.generate(rng));
                    budget -= 1;
                }
                set
            }
        }
    }

    /// Sampling helpers.
    pub mod sample {
        /// An opaque index into a collection of yet-unknown length.
        #[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
        pub struct Index(usize);

        impl Index {
            pub(crate) fn from_raw(raw: usize) -> Self {
                Index(raw)
            }

            /// Resolves the index against a collection of length `len`
            /// (which must be non-zero).
            pub fn index(&self, len: usize) -> usize {
                assert!(len > 0, "Index::index on empty collection");
                self.0 % len
            }
        }
    }

    /// Option strategies.
    pub mod option {
        use super::super::{Rng, Strategy, TestRng};

        /// A strategy producing `Option<S::Value>`.
        pub struct OptionStrategy<S>(S);

        /// Generates `Some(value)` roughly three times out of four.
        pub fn of<S: Strategy>(element: S) -> OptionStrategy<S> {
            OptionStrategy(element)
        }

        impl<S: Strategy> Strategy for OptionStrategy<S> {
            type Value = Option<S::Value>;

            fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
                if rng.gen_range(0u32..4) == 0 {
                    None
                } else {
                    Some(self.0.generate(rng))
                }
            }
        }
    }
}

/// The usual imports for writing property tests.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy,
    };
}

/// Uniform choice between strategy arms of one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            panic!("property assertion failed: {}", stringify!($cond));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            panic!(
                "property assertion failed: {}: {}",
                stringify!($cond),
                format!($($fmt)*)
            );
        }
    };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                if !(*l == *r) {
                    panic!(
                        "property assertion failed: `left == right`\n  left: {l:?}\n right: {r:?}"
                    );
                }
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        match (&$left, &$right) {
            (l, r) => {
                if !(*l == *r) {
                    panic!(
                        "property assertion failed: `left == right`: {}\n  left: {l:?}\n right: {r:?}",
                        format!($($fmt)*)
                    );
                }
            }
        }
    };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                if *l == *r {
                    panic!(
                        "property assertion failed: `left != right`\n  left: {l:?}\n right: {r:?}"
                    );
                }
            }
        }
    };
}

/// Skips the current case when its inputs don't satisfy a precondition.
///
/// `proptest!` runs each case body inside an immediately-invoked
/// closure, so this expands to a `return` from that closure — which
/// rejects the whole case even from inside a loop the test body wrote
/// itself (a bare `continue` would silently target that inner loop).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return;
        }
    };
}

/// Declares property tests: each `fn` runs `cases` times over freshly
/// generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@block ($cfg) $($rest)*);
    };
    (@block ($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                let __strategy = ($($strat,)+);
                let mut __rng = $crate::rng_for_test(concat!(module_path!(), "::", stringify!($name)));
                for __case in 0..__config.cases {
                    let ($($arg,)+) = $crate::Strategy::generate(&__strategy, &mut __rng);
                    // One closure per case: `prop_assume!` rejects a case
                    // by returning from it (see that macro's docs).
                    let __case_body = || $body;
                    __case_body();
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@block ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, PartialEq)]
    enum Shape {
        Dot,
        Line(u8),
    }

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3u32..17, y in 1u8..=4, f in -2.0f64..2.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((1..=4).contains(&y));
            prop_assert!((-2.0..2.0).contains(&f));
        }

        #[test]
        fn vec_sizes_respect_range(xs in prop::collection::vec(0u8..10, 2..5)) {
            prop_assert!((2..5).contains(&xs.len()));
            prop_assert!(xs.iter().all(|&v| v < 10));
        }

        #[test]
        fn hash_sets_hit_requested_size(s in prop::collection::hash_set(0u64..1_000, 3..6)) {
            prop_assert!((3..6).contains(&s.len()));
        }

        #[test]
        fn oneof_and_map_compose(
            shape in prop_oneof![
                Just(Shape::Dot),
                (1u8..5).prop_map(Shape::Line),
            ],
        ) {
            match shape {
                Shape::Dot => {}
                Shape::Line(n) => prop_assert!((1..5).contains(&n)),
            }
        }

        #[test]
        fn regex_strings_match_class(s in "[a-c]{2,4}") {
            prop_assert!((2..=4).contains(&s.len()), "len {}", s.len());
            prop_assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
        }

        #[test]
        fn assume_skips_invalid_cases(a in 0u8..10, b in 0u8..10) {
            prop_assume!(a <= b);
            prop_assert!(b >= a);
        }

        #[test]
        fn assume_rejects_the_whole_case_from_inner_loops(a in 0u8..10) {
            for _ in 0..1 {
                prop_assume!(a < 5);
            }
            // Only reachable when the assumption held: a `continue`-based
            // prop_assume would fall through here with a >= 5.
            prop_assert!(a < 5);
        }

        #[test]
        fn index_resolves_in_bounds(idx in any::<prop::sample::Index>(), len in 1usize..50) {
            prop_assert!(idx.index(len) < len);
        }

        #[test]
        fn option_of_produces_both(opts in prop::collection::vec(prop::option::of(0u8..5), 40..60)) {
            // With ~75% Some over 40+ draws, both variants appear with
            // overwhelming probability under the deterministic seed.
            prop_assert!(opts.iter().any(Option::is_some));
            prop_assert!(opts.iter().any(Option::is_none));
        }
    }

    #[test]
    fn deterministic_per_test_name() {
        let mut a = crate::rng_for_test("x::y");
        let mut b = crate::rng_for_test("x::y");
        let s = 0u64..1_000;
        for _ in 0..20 {
            assert_eq!(s.generate(&mut a), s.generate(&mut b));
        }
    }
}
