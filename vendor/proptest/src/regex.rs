//! A tiny regex-subset generator backing `impl Strategy for &str`.
//!
//! Supports the shapes the workspace's string strategies use: sequences
//! of literal characters and character classes `[...]` (with `a-z` ranges
//! and `\`-escaped members), each optionally quantified by `{n}`,
//! `{n,m}`, `?`, `*` or `+` (the unbounded quantifiers are capped).

use rand::Rng;

use crate::TestRng;

const UNBOUNDED_CAP: u32 = 16;

enum Atom {
    Literal(char),
    Class(Vec<(char, char)>),
}

struct Piece {
    atom: Atom,
    min: u32,
    max: u32,
}

/// Generates one random string matching `pattern`, panicking on syntax
/// this subset does not understand (a test-authoring error, not a runtime
/// condition).
pub fn generate_matching(pattern: &str, rng: &mut TestRng) -> String {
    let pieces = parse(pattern);
    let mut out = String::new();
    for piece in &pieces {
        let n = rng.gen_range(piece.min..=piece.max);
        for _ in 0..n {
            match &piece.atom {
                Atom::Literal(c) => out.push(*c),
                Atom::Class(ranges) => {
                    let total: u32 = ranges
                        .iter()
                        .map(|(lo, hi)| *hi as u32 - *lo as u32 + 1)
                        .sum();
                    let mut pick = rng.gen_range(0..total);
                    for (lo, hi) in ranges {
                        let span = *hi as u32 - *lo as u32 + 1;
                        if pick < span {
                            out.push(char::from_u32(*lo as u32 + pick).expect("valid scalar"));
                            break;
                        }
                        pick -= span;
                    }
                }
            }
        }
    }
    out
}

fn parse(pattern: &str) -> Vec<Piece> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut pieces = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let atom = match chars[i] {
            '[' => {
                let (ranges, next) = parse_class(&chars, i + 1, pattern);
                i = next;
                Atom::Class(ranges)
            }
            '\\' => {
                i += 1;
                let c = *chars
                    .get(i)
                    .unwrap_or_else(|| panic!("dangling escape in pattern {pattern:?}"));
                i += 1;
                Atom::Literal(c)
            }
            c => {
                assert!(
                    !matches!(c, '(' | ')' | '|' | '.' | '^' | '$'),
                    "unsupported regex feature {c:?} in pattern {pattern:?}"
                );
                i += 1;
                Atom::Literal(c)
            }
        };
        let (min, max) = parse_quantifier(&chars, &mut i, pattern);
        pieces.push(Piece { atom, min, max });
    }
    pieces
}

fn parse_class(chars: &[char], mut i: usize, pattern: &str) -> (Vec<(char, char)>, usize) {
    let mut ranges = Vec::new();
    while i < chars.len() && chars[i] != ']' {
        let lo = if chars[i] == '\\' {
            i += 1;
            chars[i]
        } else {
            chars[i]
        };
        // An `a-z` range needs a `-` that is neither last nor an escape.
        if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
            let hi = chars[i + 2];
            assert!(lo <= hi, "inverted class range in pattern {pattern:?}");
            ranges.push((lo, hi));
            i += 3;
        } else {
            ranges.push((lo, lo));
            i += 1;
        }
    }
    assert!(
        i < chars.len(),
        "unterminated character class in pattern {pattern:?}"
    );
    assert!(!ranges.is_empty(), "empty character class in {pattern:?}");
    (ranges, i + 1)
}

fn parse_quantifier(chars: &[char], i: &mut usize, pattern: &str) -> (u32, u32) {
    match chars.get(*i) {
        Some('{') => {
            let close = chars[*i..]
                .iter()
                .position(|&c| c == '}')
                .unwrap_or_else(|| panic!("unterminated quantifier in {pattern:?}"))
                + *i;
            let body: String = chars[*i + 1..close].iter().collect();
            *i = close + 1;
            match body.split_once(',') {
                Some((lo, hi)) => {
                    let lo = lo.trim().parse().expect("quantifier lower bound");
                    let hi = if hi.trim().is_empty() {
                        lo + UNBOUNDED_CAP
                    } else {
                        hi.trim().parse().expect("quantifier upper bound")
                    };
                    (lo, hi)
                }
                None => {
                    let n = body.trim().parse().expect("quantifier count");
                    (n, n)
                }
            }
        }
        Some('?') => {
            *i += 1;
            (0, 1)
        }
        Some('*') => {
            *i += 1;
            (0, UNBOUNDED_CAP)
        }
        Some('+') => {
            *i += 1;
            (1, UNBOUNDED_CAP)
        }
        _ => (1, 1),
    }
}
