//! Offline vendored subset of the `rand` 0.8 API.
//!
//! The build environment has no access to crates.io, so this crate
//! re-implements exactly the surface the workspace uses: [`RngCore`],
//! [`Rng`] (`gen`, `gen_range`, `gen_bool`), [`SeedableRng`]
//! (`seed_from_u64`, `from_seed`) and [`rngs::SmallRng`] (xoshiro256++,
//! the same family the real `SmallRng` uses on 64-bit targets).
//!
//! It is API-compatible for those items, not bit-compatible with the
//! upstream streams — all workspace tests are seed-deterministic, not
//! stream-value-sensitive.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// The core of a random number generator: a source of random `u64`s.
pub trait RngCore {
    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32;
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// User-facing random value generation, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Returns a random value of type `T` from the standard distribution.
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
    {
        use distributions::Distribution;
        distributions::Standard.sample(self)
    }

    /// Returns a uniformly distributed value in `range`.
    fn gen_range<T, B>(&mut self, range: B) -> T
    where
        B: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        let x: f64 = self.gen();
        x < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A range that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one uniform value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! uint_sample_range {
    ($($t:ty),*) => {
        $(
            impl SampleRange<$t> for Range<$t> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "cannot sample empty range");
                    let span = (self.end - self.start) as u128;
                    self.start + (rng.next_u64() as u128 % span) as $t
                }
            }

            impl SampleRange<$t> for RangeInclusive<$t> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    let (lo, hi) = self.into_inner();
                    assert!(lo <= hi, "cannot sample empty range");
                    let span = (hi - lo) as u128 + 1;
                    lo + (rng.next_u64() as u128 % span) as $t
                }
            }
        )*
    };
}

uint_sample_range!(u8, u16, u32, u64, usize);

macro_rules! int_sample_range {
    ($($t:ty),*) => {
        $(
            impl SampleRange<$t> for Range<$t> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "cannot sample empty range");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
                }
            }

            impl SampleRange<$t> for RangeInclusive<$t> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    let (lo, hi) = self.into_inner();
                    assert!(lo <= hi, "cannot sample empty range");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
                }
            }
        )*
    };
}

int_sample_range!(i8, i16, i32, i64, isize);

// The unit-interval draw must keep only as many random bits as the
// target type's mantissa holds (24 for f32, 53 for f64): converting 53
// bits `as f32` can round up to 1.0, breaking the exclusive upper bound.
macro_rules! float_sample_range {
    ($($t:ty, $shift:expr, $denom:expr;)*) => {
        $(
            impl SampleRange<$t> for Range<$t> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "cannot sample empty range");
                    let unit = (rng.next_u64() >> $shift) as $t / $denom as $t;
                    self.start + unit * (self.end - self.start)
                }
            }
        )*
    };
}

float_sample_range! {
    f32, 40, (1u64 << 24);
    f64, 11, (1u64 << 53);
}

/// A generator that can be deterministically seeded.
pub trait SeedableRng: Sized {
    /// Raw seed material, e.g. `[u8; 32]`.
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from raw seed material.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64`, expanded with SplitMix64.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, non-cryptographic generator (xoshiro256++).
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..i * 8 + 8]);
                *word = u64::from_le_bytes(b);
            }
            // xoshiro256++ must not start from the all-zero state.
            if s == [0, 0, 0, 0] {
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0xBF58_476D_1CE4_E5B9,
                    0x94D0_49BB_1331_11EB,
                    0x2545_F491_4F6C_DD1D,
                ];
            }
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let bytes = self.next_u64().to_le_bytes();
                let n = chunk.len();
                chunk.copy_from_slice(&bytes[..n]);
            }
        }
    }
}

/// Distributions over random values.
pub mod distributions {
    use super::RngCore;

    /// A distribution producing values of type `T`.
    pub trait Distribution<T> {
        /// Draws one value from the distribution.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// The standard distribution: uniform over all values of an integer
    /// type, uniform in `[0, 1)` for floats, fair coin for `bool`.
    pub struct Standard;

    macro_rules! standard_uint {
        ($($t:ty),*) => {
            $(
                impl Distribution<$t> for Standard {
                    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                        rng.next_u64() as $t
                    }
                }
            )*
        };
    }

    standard_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Distribution<u128> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u128 {
            (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
        }
    }

    impl Distribution<bool> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Distribution<f64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
            (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }

    impl Distribution<f32> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
            (rng.next_u64() >> 40) as f32 / (1u64 << 24) as f32
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let same = (0..10).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 10);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1_000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(1u8..=4);
            assert!((1..=4).contains(&y));
            let f = rng.gen_range(-2.0f64..3.0);
            assert!((-2.0..3.0).contains(&f));
        }
    }

    #[test]
    fn f32_range_excludes_the_upper_bound() {
        // 53 random bits converted `as f32` can round to 1.0; the f32
        // path must use a 24-bit draw so `end` is never returned.
        let mut rng = SmallRng::seed_from_u64(5);
        for _ in 0..200_000 {
            let x = rng.gen_range(0.0f32..1.0);
            assert!(x < 1.0, "f32 sample hit the exclusive upper bound");
        }
    }

    #[test]
    fn unit_floats_cover_the_interval() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            lo = lo.min(x);
            hi = hi.max(x);
        }
        assert!(lo < 0.01 && hi > 0.99);
    }

    #[test]
    fn low_bits_are_fair() {
        // The admission tests rely on `gen::<u64>() & mask == 0` having
        // probability 2^-e; check the lowest 3 bits look uniform.
        let mut rng = SmallRng::seed_from_u64(1234);
        let trials = 64_000u32;
        let hits = (0..trials)
            .filter(|_| rng.gen::<u64>() & 0b111 == 0)
            .count() as f64;
        let freq = hits / trials as f64;
        assert!((freq - 0.125).abs() < 0.01, "freq {freq}");
    }
}
