//! Offline vendored subset of the `rand` 0.8 API.
//!
//! The build environment has no access to crates.io, so this crate
//! re-implements exactly the surface the workspace uses: [`RngCore`],
//! [`Rng`] (`gen`, `gen_range`, `gen_bool`), [`SeedableRng`]
//! (`seed_from_u64`, `from_seed`) and [`rngs::SmallRng`] (xoshiro256++,
//! the same family the real `SmallRng` uses on 64-bit targets).
//!
//! It is API-compatible for those items, not bit-compatible with the
//! upstream streams — all workspace tests are seed-deterministic, not
//! stream-value-sensitive.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// The core of a random number generator: a source of random `u64`s.
pub trait RngCore {
    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32;
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// User-facing random value generation, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Returns a random value of type `T` from the standard distribution.
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
    {
        use distributions::Distribution;
        distributions::Standard.sample(self)
    }

    /// Returns a uniformly distributed value in `range`.
    fn gen_range<T, B>(&mut self, range: B) -> T
    where
        B: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        let x: f64 = self.gen();
        x < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A range that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one uniform value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! uint_sample_range {
    ($($t:ty),*) => {
        $(
            impl SampleRange<$t> for Range<$t> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "cannot sample empty range");
                    let span = (self.end - self.start) as u128;
                    self.start + (rng.next_u64() as u128 % span) as $t
                }
            }

            impl SampleRange<$t> for RangeInclusive<$t> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    let (lo, hi) = self.into_inner();
                    assert!(lo <= hi, "cannot sample empty range");
                    let span = (hi - lo) as u128 + 1;
                    lo + (rng.next_u64() as u128 % span) as $t
                }
            }
        )*
    };
}

uint_sample_range!(u8, u16, u32, u64, usize);

macro_rules! int_sample_range {
    ($($t:ty),*) => {
        $(
            impl SampleRange<$t> for Range<$t> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "cannot sample empty range");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
                }
            }

            impl SampleRange<$t> for RangeInclusive<$t> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    let (lo, hi) = self.into_inner();
                    assert!(lo <= hi, "cannot sample empty range");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
                }
            }
        )*
    };
}

int_sample_range!(i8, i16, i32, i64, isize);

// The unit-interval draw must keep only as many random bits as the
// target type's mantissa holds (24 for f32, 53 for f64): converting 53
// bits `as f32` can round up to 1.0, breaking the exclusive upper bound.
macro_rules! float_sample_range {
    ($($t:ty, $shift:expr, $denom:expr;)*) => {
        $(
            impl SampleRange<$t> for Range<$t> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "cannot sample empty range");
                    let unit = (rng.next_u64() >> $shift) as $t / $denom as $t;
                    self.start + unit * (self.end - self.start)
                }
            }
        )*
    };
}

float_sample_range! {
    f32, 40, (1u64 << 24);
    f64, 11, (1u64 << 53);
}

/// A generator that can be deterministically seeded.
pub trait SeedableRng: Sized {
    /// Raw seed material, e.g. `[u8; 32]`.
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from raw seed material.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64`, expanded with SplitMix64.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, non-cryptographic generator (xoshiro256++).
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..i * 8 + 8]);
                *word = u64::from_le_bytes(b);
            }
            // xoshiro256++ must not start from the all-zero state.
            if s == [0, 0, 0, 0] {
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0xBF58_476D_1CE4_E5B9,
                    0x94D0_49BB_1331_11EB,
                    0x2545_F491_4F6C_DD1D,
                ];
            }
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let bytes = self.next_u64().to_le_bytes();
                let n = chunk.len();
                chunk.copy_from_slice(&bytes[..n]);
            }
        }
    }
}

/// Distributions over random values.
pub mod distributions {
    use super::RngCore;

    /// A distribution producing values of type `T`.
    pub trait Distribution<T> {
        /// Draws one value from the distribution.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// The standard distribution: uniform over all values of an integer
    /// type, uniform in `[0, 1)` for floats, fair coin for `bool`.
    pub struct Standard;

    macro_rules! standard_uint {
        ($($t:ty),*) => {
            $(
                impl Distribution<$t> for Standard {
                    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                        rng.next_u64() as $t
                    }
                }
            )*
        };
    }

    standard_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Distribution<u128> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u128 {
            (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
        }
    }

    impl Distribution<bool> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Distribution<f64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
            (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }

    impl Distribution<f32> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
            (rng.next_u64() >> 40) as f32 / (1u64 << 24) as f32
        }
    }

    fn unit_open01<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // (0, 1): the +1 keeps ln() finite in the inversion methods.
        ((rng.next_u64() >> 11) + 1) as f64 / (1u64 << 53) as f64
    }

    /// The Poisson distribution `Poisson(λ)`, over non-negative counts.
    ///
    /// Sampling uses Knuth's product-of-uniforms inversion for small `λ`
    /// and a normal (Box–Muller) approximation with continuity
    /// correction above [`Poisson::NORMAL_CUTOFF`], where the relative
    /// error of the approximation is below the statistical noise any
    /// consumer in this workspace can resolve.
    #[derive(Clone, Copy, Debug, PartialEq)]
    pub struct Poisson {
        mean: f64,
    }

    impl Poisson {
        /// Mean above which sampling switches to the normal approximation.
        pub const NORMAL_CUTOFF: f64 = 64.0;

        /// A Poisson distribution with the given mean.
        ///
        /// # Panics
        ///
        /// Panics if `mean` is not finite and strictly positive.
        pub fn new(mean: f64) -> Self {
            assert!(
                mean.is_finite() && mean > 0.0,
                "Poisson mean must be finite and > 0, got {mean}"
            );
            Poisson { mean }
        }

        /// The distribution mean `λ` (also its variance).
        pub fn mean(&self) -> f64 {
            self.mean
        }
    }

    impl Distribution<u64> for Poisson {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u64 {
            if self.mean < Self::NORMAL_CUTOFF {
                // Knuth: count uniforms until their product drops below
                // e^-λ. Runs in O(λ) draws, fine for small means.
                let limit = (-self.mean).exp();
                let mut product = unit_open01(rng);
                let mut count = 0u64;
                while product > limit {
                    product *= unit_open01(rng);
                    count += 1;
                }
                count
            } else {
                // Box–Muller normal with μ = σ² = λ, rounded with a
                // continuity correction and clamped at zero.
                let u = unit_open01(rng);
                let v = unit_open01(rng);
                let z = (-2.0 * u.ln()).sqrt() * (std::f64::consts::TAU * v).cos();
                let x = self.mean + self.mean.sqrt() * z + 0.5;
                if x < 0.0 {
                    0
                } else {
                    x.floor() as u64
                }
            }
        }
    }

    /// The Zipf distribution over ranks `1..=n` with exponent `s`:
    /// `P(k) ∝ k^-s`.
    ///
    /// Construction precomputes the normalized cumulative weights
    /// (`O(n)` memory); sampling is one uniform draw plus a binary
    /// search, `O(log n)` with no allocation.
    #[derive(Clone, Debug, PartialEq)]
    pub struct Zipf {
        cdf: Vec<f64>,
    }

    impl Zipf {
        /// A Zipf distribution over `1..=n` with exponent `s`.
        ///
        /// # Panics
        ///
        /// Panics if `n == 0` or `s` is not finite and non-negative
        /// (`s = 0` degenerates to the uniform distribution).
        pub fn new(n: u64, s: f64) -> Self {
            assert!(n > 0, "Zipf needs at least one rank");
            assert!(
                s.is_finite() && s >= 0.0,
                "Zipf exponent must be finite and >= 0, got {s}"
            );
            let mut cdf = Vec::with_capacity(n as usize);
            let mut total = 0.0f64;
            for k in 1..=n {
                total += (k as f64).powf(-s);
                cdf.push(total);
            }
            for w in &mut cdf {
                *w /= total;
            }
            // Guard against floating-point shortfall at the top end.
            *cdf.last_mut().expect("n > 0") = 1.0;
            Zipf { cdf }
        }

        /// Number of ranks `n`.
        pub fn ranks(&self) -> u64 {
            self.cdf.len() as u64
        }

        /// Probability of rank `k` (1-based), `0` outside `1..=n`.
        pub fn probability(&self, k: u64) -> f64 {
            if k == 0 || k > self.ranks() {
                return 0.0;
            }
            let i = (k - 1) as usize;
            let below = if i == 0 { 0.0 } else { self.cdf[i - 1] };
            self.cdf[i] - below
        }
    }

    impl Distribution<u64> for Zipf {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u64 {
            let u = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
            let i = self.cdf.partition_point(|&c| c <= u);
            (i.min(self.cdf.len() - 1) + 1) as u64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let same = (0..10).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 10);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1_000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(1u8..=4);
            assert!((1..=4).contains(&y));
            let f = rng.gen_range(-2.0f64..3.0);
            assert!((-2.0..3.0).contains(&f));
        }
    }

    #[test]
    fn f32_range_excludes_the_upper_bound() {
        // 53 random bits converted `as f32` can round to 1.0; the f32
        // path must use a 24-bit draw so `end` is never returned.
        let mut rng = SmallRng::seed_from_u64(5);
        for _ in 0..200_000 {
            let x = rng.gen_range(0.0f32..1.0);
            assert!(x < 1.0, "f32 sample hit the exclusive upper bound");
        }
    }

    #[test]
    fn unit_floats_cover_the_interval() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            lo = lo.min(x);
            hi = hi.max(x);
        }
        assert!(lo < 0.01 && hi > 0.99);
    }

    fn mean_and_variance(samples: &[f64]) -> (f64, f64) {
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
        (mean, var)
    }

    #[test]
    fn poisson_small_mean_matches_moments() {
        use super::distributions::{Distribution, Poisson};
        // λ = 4 exercises the Knuth branch; mean and variance must both
        // land near λ (tolerance ≈ 5 standard errors at 40k samples).
        let dist = Poisson::new(4.0);
        let mut rng = SmallRng::seed_from_u64(0xA11CE);
        let samples: Vec<f64> = (0..40_000).map(|_| dist.sample(&mut rng) as f64).collect();
        let (mean, var) = mean_and_variance(&samples);
        assert!((mean - 4.0).abs() < 0.06, "mean {mean}");
        assert!((var - 4.0).abs() < 0.25, "variance {var}");
    }

    #[test]
    fn poisson_large_mean_matches_moments() {
        use super::distributions::{Distribution, Poisson};
        // λ = 200 exercises the normal-approximation branch.
        let dist = Poisson::new(200.0);
        let mut rng = SmallRng::seed_from_u64(0xB0B);
        let samples: Vec<f64> = (0..40_000).map(|_| dist.sample(&mut rng) as f64).collect();
        let (mean, var) = mean_and_variance(&samples);
        assert!((mean - 200.0).abs() < 0.5, "mean {mean}");
        assert!((var - 200.0).abs() < 10.0, "variance {var}");
    }

    #[test]
    fn poisson_is_seed_deterministic() {
        use super::distributions::{Distribution, Poisson};
        let dist = Poisson::new(12.5);
        let mut a = SmallRng::seed_from_u64(77);
        let mut b = SmallRng::seed_from_u64(77);
        for _ in 0..200 {
            assert_eq!(dist.sample(&mut a), dist.sample(&mut b));
        }
    }

    #[test]
    fn zipf_frequencies_follow_the_power_law() {
        use super::distributions::{Distribution, Zipf};
        let dist = Zipf::new(50, 1.0);
        let mut rng = SmallRng::seed_from_u64(0x21F);
        let mut counts = [0u64; 50];
        let trials = 200_000;
        for _ in 0..trials {
            let k = dist.sample(&mut rng);
            assert!((1..=50).contains(&k));
            counts[(k - 1) as usize] += 1;
        }
        // With s = 1 the rank-1 : rank-2 and rank-1 : rank-4 frequency
        // ratios must approach 2 and 4.
        let r12 = counts[0] as f64 / counts[1] as f64;
        let r14 = counts[0] as f64 / counts[3] as f64;
        assert!((r12 - 2.0).abs() < 0.15, "rank1/rank2 {r12}");
        assert!((r14 - 4.0).abs() < 0.3, "rank1/rank4 {r14}");
        // Empirical rank-1 mass vs the analytic probability.
        let p1 = counts[0] as f64 / trials as f64;
        assert!((p1 - dist.probability(1)).abs() < 0.01, "p1 {p1}");
    }

    #[test]
    fn zipf_zero_exponent_is_uniform() {
        use super::distributions::{Distribution, Zipf};
        let dist = Zipf::new(8, 0.0);
        let mut rng = SmallRng::seed_from_u64(3);
        let mut counts = [0u64; 8];
        for _ in 0..80_000 {
            counts[(dist.sample(&mut rng) - 1) as usize] += 1;
        }
        for &c in &counts {
            let freq = c as f64 / 80_000.0;
            assert!((freq - 0.125).abs() < 0.01, "freq {freq}");
        }
    }

    #[test]
    fn zipf_probabilities_sum_to_one() {
        use super::distributions::Zipf;
        let dist = Zipf::new(100, 0.8);
        let total: f64 = (1..=100).map(|k| dist.probability(k)).sum();
        assert!((total - 1.0).abs() < 1e-9, "total {total}");
        assert_eq!(dist.probability(0), 0.0);
        assert_eq!(dist.probability(101), 0.0);
    }

    #[test]
    fn low_bits_are_fair() {
        // The admission tests rely on `gen::<u64>() & mask == 0` having
        // probability 2^-e; check the lowest 3 bits look uniform.
        let mut rng = SmallRng::seed_from_u64(1234);
        let trials = 64_000u32;
        let hits = (0..trials)
            .filter(|_| rng.gen::<u64>() & 0b111 == 0)
            .count() as f64;
        let freq = hits / trials as f64;
        assert!((freq - 0.125).abs() < 0.01, "freq {freq}");
    }
}
