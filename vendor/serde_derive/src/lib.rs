//! Offline vendored no-op `serde` derive macros.
//!
//! The workspace annotates types with `#[derive(Serialize, Deserialize)]`
//! but never serializes through a serde data format (all I/O goes through
//! the hand-written wire codec and CSV writers). With crates.io
//! unreachable, these derives expand to nothing: the annotation stays
//! source-compatible and the `serde` facade crate provides the marker
//! traits for any future bounds.

use proc_macro::TokenStream;

/// No-op stand-in for `serde_derive::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `serde_derive::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
