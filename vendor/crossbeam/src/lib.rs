//! Offline vendored subset of the `crossbeam` API.
//!
//! Only `crossbeam::channel::unbounded` is used by this workspace; the
//! standard-library mpsc channel provides the same semantics for that
//! single-consumer use (cloneable sender, `recv` until all senders drop).

#![forbid(unsafe_code)]

/// Multi-producer channels (std-mpsc-backed).
pub mod channel {
    pub use std::sync::mpsc::{Receiver, RecvError, SendError, Sender, TryRecvError};

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        std::sync::mpsc::channel()
    }

    #[cfg(test)]
    mod tests {
        #[test]
        fn fan_in_then_drain() {
            let (tx, rx) = super::unbounded::<u32>();
            let tx2 = tx.clone();
            std::thread::spawn(move || tx2.send(1).unwrap());
            tx.send(2).unwrap();
            drop(tx);
            let mut got: Vec<u32> = rx.iter().collect();
            got.sort_unstable();
            assert_eq!(got, vec![1, 2]);
        }
    }
}
