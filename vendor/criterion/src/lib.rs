//! Offline vendored subset of the `criterion` API.
//!
//! The build environment has no access to crates.io, so this crate
//! provides a functional miniature of the benchmarking surface the
//! workspace uses: [`Criterion`], benchmark groups, [`BenchmarkId`],
//! [`Throughput`], `b.iter(..)` and the `criterion_group!` /
//! `criterion_main!` macros. It measures with a simple
//! calibrate-then-sample loop and prints median ns/iter (plus MB/s when a
//! byte throughput is set) — no statistics engine, no HTML reports.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export so benches may use `criterion::black_box`.
pub use std::hint::black_box;

const TARGET_SAMPLE_TIME: Duration = Duration::from_millis(60);
const CALIBRATION_TIME: Duration = Duration::from_millis(10);

/// The benchmark driver.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 20,
        }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.default_sample_size,
            throughput: None,
            _criterion: self,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = self.default_sample_size;
        run_benchmark(&name.into(), sample_size, None, f);
        self
    }
}

/// A named set of benchmarks sharing sample-size and throughput settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Declares how much work one iteration performs, enabling rate
    /// reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into());
        run_benchmark(&label, self.sample_size, self.throughput, f);
        self
    }

    /// Runs one benchmark with an explicit input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into());
        run_benchmark(&label, self.sample_size, self.throughput, |b| {
            f(b, input);
        });
        self
    }

    /// Ends the group (kept for API compatibility; reporting is
    /// per-benchmark).
    pub fn finish(self) {}
}

/// A benchmark identifier, optionally parameterized.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An identifier `"{name}/{parameter}"`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An identifier carrying only a parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(label: &str) -> Self {
        BenchmarkId {
            label: label.to_owned(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> Self {
        BenchmarkId { label }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

/// Work-per-iteration declaration for rate reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Logical elements processed per iteration.
    Elements(u64),
}

/// Hands the measured routine to the timing loop.
pub struct Bencher {
    iters_per_sample: u64,
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Measures `routine`, first calibrating how many iterations fit in a
    /// sample, then recording `sample_size` timed samples.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Calibration: find an iteration count filling CALIBRATION_TIME.
        let mut iters = 1u64;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= CALIBRATION_TIME || iters >= 1 << 20 {
                let per_iter = elapsed.as_nanos().max(1) / u128::from(iters);
                let target = TARGET_SAMPLE_TIME.as_nanos() / u128::from(self.sample_size as u64);
                self.iters_per_sample = ((target / per_iter.max(1)) as u64).clamp(1, 1 << 24);
                break;
            }
            iters = iters.saturating_mul(4);
        }

        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(routine());
            }
            self.samples.push(start.elapsed());
        }
    }
}

fn run_benchmark<F>(label: &str, sample_size: usize, throughput: Option<Throughput>, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut bencher = Bencher {
        iters_per_sample: 1,
        samples: Vec::with_capacity(sample_size),
        sample_size,
    };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("{label:<50} (no samples)");
        return;
    }
    let mut per_iter: Vec<u128> = bencher
        .samples
        .iter()
        .map(|d| d.as_nanos() / u128::from(bencher.iters_per_sample))
        .collect();
    per_iter.sort_unstable();
    let median = per_iter[per_iter.len() / 2];
    let rate = match throughput {
        Some(Throughput::Bytes(bytes)) if median > 0 => {
            let mbps = bytes as f64 * 1e9 / median as f64 / (1024.0 * 1024.0);
            format!("  {mbps:>10.1} MiB/s")
        }
        Some(Throughput::Elements(n)) if median > 0 => {
            let eps = n as f64 * 1e9 / median as f64;
            format!("  {eps:>10.0} elem/s")
        }
        _ => String::new(),
    };
    println!("{label:<50} {median:>12} ns/iter{rate}");
}

/// Declares a group-runner function over benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $( $target(c); )+
        }
    };
}

/// Declares `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $( $group(&mut c); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("vendored");
        group.sample_size(3);
        group.throughput(Throughput::Bytes(64));
        group.bench_function("sum", |b| b.iter(|| (0..64u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("shift", 3), &3u32, |b, &s| {
            b.iter(|| 1u64 << s)
        });
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn group_runner_executes() {
        let mut c = Criterion::default();
        benches(&mut c);
    }
}
