//! Offline vendored subset of the `parking_lot` API.
//!
//! Wraps the standard-library lock types behind `parking_lot`'s
//! non-poisoning signatures (`lock()` / `read()` / `write()` return guards
//! directly). A poisoned std lock is recovered rather than propagated,
//! matching `parking_lot`'s behaviour of not poisoning at all.

#![forbid(unsafe_code)]

use std::sync;

pub use sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual exclusion primitive (non-poisoning `lock()`).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex holding `value`.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner
            .lock()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Returns a mutable reference without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// A reader-writer lock (non-poisoning `read()` / `write()`).
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new lock holding `value`.
    pub fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner
            .read()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner
            .write()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Returns a mutable reference without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(vec![1, 2]);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }
}
