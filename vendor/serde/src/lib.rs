//! Offline vendored `serde` facade.
//!
//! Provides the `Serialize` / `Deserialize` names the workspace imports:
//! the derive macros (no-ops, see `serde_derive`) and marker traits of the
//! same names, mirroring how the real crate pairs them. No serde data
//! format is in the tree, so nothing ever calls through these traits.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de> {}
