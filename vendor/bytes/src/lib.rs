//! Offline vendored subset of the `bytes` 1.x API.
//!
//! The build environment has no access to crates.io, so this crate
//! re-implements the byte-buffer surface the workspace codec uses:
//! [`Bytes`], [`BytesMut`], and the [`Buf`] / [`BufMut`] traits with the
//! little-endian accessors. Buffers are plain `Vec<u8>`s with a read
//! cursor — correctness-first, zero-copy-second.

#![forbid(unsafe_code)]

use std::fmt;
use std::ops::{Deref, DerefMut};

/// Read access to a contiguous byte buffer.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Discards the next `n` bytes.
    fn advance(&mut self, n: usize);

    /// A view of the unread bytes.
    fn chunk(&self) -> &[u8];

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    /// Reads a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        b.copy_from_slice(&self.chunk()[..2]);
        self.advance(2);
        u16::from_le_bytes(b)
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        b.copy_from_slice(&self.chunk()[..4]);
        self.advance(4);
        u32::from_le_bytes(b)
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        b.copy_from_slice(&self.chunk()[..8]);
        self.advance(8);
        u64::from_le_bytes(b)
    }
}

/// Append access to a growable byte buffer.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

/// An immutable byte buffer with a read cursor.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Vec<u8>,
    pos: usize,
}

// Equality and hashing cover the *unread* contents only, matching
// upstream `bytes` (a derive over (data, pos) would make two buffers
// with identical remaining bytes compare unequal after `advance`).
impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// A buffer over static data (copied here — this vendored subset
    /// keeps one ownership model instead of upstream's zero-copy view).
    pub fn from_static(data: &'static [u8]) -> Self {
        Bytes {
            data: data.to_vec(),
            pos: 0,
        }
    }

    /// Unread length.
    pub fn len(&self) -> usize {
        self.data.len() - self.pos
    }

    /// True when fully consumed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Splits off and returns the first `n` unread bytes.
    pub fn split_to(&mut self, n: usize) -> Bytes {
        assert!(n <= self.len(), "split_to out of bounds");
        let head = self.data[self.pos..self.pos + n].to_vec();
        self.pos += n;
        Bytes { data: head, pos: 0 }
    }

    /// Copies the unread bytes into a fresh `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    fn as_slice(&self) -> &[u8] {
        &self.data[self.pos..]
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance out of bounds");
        self.pos += n;
    }

    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes { data, pos: 0 }
    }
}

impl From<&[u8]> for Bytes {
    fn from(src: &[u8]) -> Self {
        Bytes {
            data: src.to_vec(),
            pos: 0,
        }
    }
}

impl<const N: usize> From<&[u8; N]> for Bytes {
    fn from(src: &[u8; N]) -> Self {
        Bytes {
            data: src.to_vec(),
            pos: 0,
        }
    }
}

impl From<&str> for Bytes {
    fn from(src: &str) -> Self {
        Bytes::from(src.as_bytes())
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b{:?}", self.as_slice())
    }
}

/// A mutable, growable byte buffer with a read cursor.
#[derive(Clone, Default)]
pub struct BytesMut {
    data: Vec<u8>,
    start: usize,
}

impl PartialEq for BytesMut {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for BytesMut {}

impl std::hash::Hash for BytesMut {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// An empty buffer with `cap` bytes of pre-allocated space.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
            start: 0,
        }
    }

    /// Unread length.
    pub fn len(&self) -> usize {
        self.data.len() - self.start
    }

    /// True when fully consumed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Removes all contents.
    pub fn clear(&mut self) {
        self.data.clear();
        self.start = 0;
    }

    /// Reserves space for at least `additional` more bytes.
    pub fn reserve(&mut self, additional: usize) {
        self.data.reserve(additional);
    }

    /// Appends raw bytes.
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }

    /// Splits off and returns the first `n` unread bytes.
    pub fn split_to(&mut self, n: usize) -> BytesMut {
        assert!(n <= self.len(), "split_to out of bounds");
        let head = self.data[self.start..self.start + n].to_vec();
        Buf::advance(self, n);
        BytesMut {
            data: head,
            start: 0,
        }
    }

    /// Drops the consumed prefix once it dominates the allocation, so a
    /// long-lived read accumulator (append, decode, repeat) stays
    /// bounded by its unread contents instead of every byte ever read.
    fn maybe_compact(&mut self) {
        if self.start >= 4096 && self.start * 2 >= self.data.len() {
            self.data.drain(..self.start);
            self.start = 0;
        }
    }

    /// Freezes the unread contents into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes {
            data: if self.start == 0 {
                self.data
            } else {
                self.data[self.start..].to_vec()
            },
            pos: 0,
        }
    }

    fn as_slice(&self) -> &[u8] {
        &self.data[self.start..]
    }

    fn as_mut_slice(&mut self) -> &mut [u8] {
        &mut self.data[self.start..]
    }
}

impl Buf for BytesMut {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance out of bounds");
        self.start += n;
        self.maybe_compact();
    }

    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        self.as_mut_slice()
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<&[u8]> for BytesMut {
    fn from(src: &[u8]) -> Self {
        BytesMut {
            data: src.to_vec(),
            start: 0,
        }
    }
}

impl From<Vec<u8>> for BytesMut {
    fn from(data: Vec<u8>) -> Self {
        BytesMut { data, start: 0 }
    }
}

impl fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b{:?}", self.as_slice())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_little_endian() {
        let mut buf = BytesMut::new();
        buf.put_u8(0xab);
        buf.put_u16_le(0x1234);
        buf.put_u32_le(0xdead_beef);
        buf.put_u64_le(0x0123_4567_89ab_cdef);
        buf.put_slice(b"hi");
        let mut b = buf.freeze();
        assert_eq!(b.get_u8(), 0xab);
        assert_eq!(b.get_u16_le(), 0x1234);
        assert_eq!(b.get_u32_le(), 0xdead_beef);
        assert_eq!(b.get_u64_le(), 0x0123_4567_89ab_cdef);
        assert_eq!(b.to_vec(), b"hi");
    }

    #[test]
    fn split_advance_and_index() {
        let mut buf = BytesMut::from(&b"0123456789"[..]);
        buf.advance(2);
        assert_eq!(&buf[..], b"23456789");
        buf[0] ^= 1; // '2' ^ 1 == '3'
        assert_eq!(buf[0], b'3');
        let head = buf.split_to(3);
        assert_eq!(&head[..], b"334");
        assert_eq!(&buf[..], b"56789");
        let frozen = buf.freeze();
        assert_eq!(frozen.len(), 5);
    }

    #[test]
    fn equality_ignores_consumed_prefix() {
        let mut a = Bytes::from(&b"xy"[..]);
        a.advance(1);
        assert_eq!(a, Bytes::from(&b"y"[..]));
        let mut m = BytesMut::from(&b"xy"[..]);
        m.advance(1);
        assert_eq!(m, BytesMut::from(&b"y"[..]));
    }

    #[test]
    fn long_lived_accumulator_stays_bounded() {
        // Append-decode-repeat on one buffer must not retain every byte
        // ever read (maybe_compact drops the consumed prefix).
        let mut buf = BytesMut::new();
        let chunk = vec![0u8; 8 * 1024];
        for _ in 0..100 {
            buf.extend_from_slice(&chunk);
            buf.advance(chunk.len());
        }
        assert!(buf.is_empty());
        assert!(
            buf.data.len() < 64 * 1024,
            "{} bytes retained after consuming 800 KiB",
            buf.data.len()
        );
    }

    #[test]
    fn bytes_split_to_consumes_front() {
        let mut b = Bytes::from(vec![1u8, 2, 3, 4]);
        let head = b.split_to(2);
        assert_eq!(&head[..], &[1, 2]);
        assert_eq!(&b[..], &[3, 4]);
        assert_eq!(b.remaining(), 2);
    }
}
