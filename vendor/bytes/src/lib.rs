//! Offline vendored subset of the `bytes` 1.x API.
//!
//! The build environment has no access to crates.io, so this crate
//! re-implements the byte-buffer surface the workspace codec uses:
//! [`Bytes`], [`BytesMut`], and the [`Buf`] / [`BufMut`] traits with the
//! little-endian accessors.
//!
//! Like upstream, [`Bytes`] is a cheaply cloneable, sliceable view into a
//! shared immutable allocation: a reference-counted buffer plus a
//! `start..end` range (no unsafe code). `clone`, `slice`, `split_to`,
//! `split_off` and `advance` are all O(1) — they adjust the range and
//! bump the reference count without touching payload bytes. A supplier
//! serving the same media segment to a thousand sessions hands out a
//! thousand views of one allocation.
//!
//! The backing store is `Arc<Vec<u8>>` rather than `Arc<[u8]>`: both give
//! O(1) views, but only the former makes `Bytes::from(Vec<u8>)` — the
//! constructor on every frame-receive and file-build path — an O(1) move
//! instead of a full copy (`Arc<[u8]>::from(Vec)` must reallocate).
//!
//! [`BytesMut`] stays a growable `Vec<u8>` with a read cursor;
//! [`BytesMut::freeze`] moves the buffer into the shared allocation for
//! free when nothing has been consumed (and copies only the unread
//! suffix otherwise), after which every derived view is O(1).
//!
//! # Examples
//!
//! Views share the underlying allocation — cloning and slicing never copy
//! payload bytes:
//!
//! ```
//! use bytes::Bytes;
//!
//! let whole = Bytes::from(vec![1u8, 2, 3, 4, 5, 6, 7, 8]);
//! let view = whole.clone();
//! assert_eq!(whole.as_ptr(), view.as_ptr()); // same allocation, no copy
//!
//! let tail = whole.slice(4..);
//! assert_eq!(&tail[..], &[5, 6, 7, 8]);
//! assert_eq!(tail.as_ptr(), whole[4..].as_ptr()); // a view, not a copy
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::ops::{Bound, Deref, DerefMut, RangeBounds};
use std::sync::Arc;

/// Read access to a contiguous byte buffer.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Discards the next `n` bytes.
    fn advance(&mut self, n: usize);

    /// A view of the unread bytes.
    fn chunk(&self) -> &[u8];

    /// Consumes the next `len` bytes as an owned [`Bytes`].
    ///
    /// The default implementation copies; [`Bytes`] overrides it with an
    /// O(1) shared view.
    fn copy_to_bytes(&mut self, len: usize) -> Bytes {
        let out = Bytes::from(&self.chunk()[..len]);
        self.advance(len);
        out
    }

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    /// Reads a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        b.copy_from_slice(&self.chunk()[..2]);
        self.advance(2);
        u16::from_le_bytes(b)
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        b.copy_from_slice(&self.chunk()[..4]);
        self.advance(4);
        u32::from_le_bytes(b)
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        b.copy_from_slice(&self.chunk()[..8]);
        self.advance(8);
        u64::from_le_bytes(b)
    }
}

/// Append access to a growable byte buffer.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

/// An immutable, reference-counted view into a shared byte allocation.
///
/// `clone`, [`slice`](Bytes::slice), [`split_to`](Bytes::split_to),
/// [`split_off`](Bytes::split_off) and [`advance`](Buf::advance) are O(1):
/// they produce new views of the same `Arc<[u8]>` without copying payload
/// bytes. The allocation is freed when the last view referencing it drops.
///
/// # Examples
///
/// ```
/// use bytes::Bytes;
///
/// let mut b = Bytes::from(vec![0u8, 1, 2, 3, 4]);
/// let head = b.split_to(2); // O(1): both halves share one allocation
/// assert_eq!(&head[..], &[0, 1]);
/// assert_eq!(&b[..], &[2, 3, 4]);
/// assert_eq!(b.slice(1..3), Bytes::from(&[3u8, 4][..]));
/// ```
#[derive(Clone)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes {
            data: Arc::new(Vec::new()),
            start: 0,
            end: 0,
        }
    }
}

// Equality and hashing cover the *viewed* contents only, matching
// upstream `bytes` (two views compare equal iff their remaining bytes
// are equal, regardless of which allocation backs them).
impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// A buffer over static data.
    ///
    /// Copied into the shared allocation once at construction (upstream
    /// borrows the `'static` slice directly; doing so here would need a
    /// second representation arm, and every view derived afterwards is
    /// O(1) either way).
    pub fn from_static(data: &'static [u8]) -> Self {
        Bytes::from(data)
    }

    /// Length of the viewed bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True when the view is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Splits off and returns the first `n` bytes as an O(1) shared view;
    /// `self` keeps the rest.
    ///
    /// # Panics
    ///
    /// Panics if `n > len()`.
    pub fn split_to(&mut self, n: usize) -> Bytes {
        assert!(n <= self.len(), "split_to out of bounds");
        let head = Bytes {
            data: Arc::clone(&self.data),
            start: self.start,
            end: self.start + n,
        };
        self.start += n;
        head
    }

    /// Splits off and returns the bytes from `n` onward as an O(1) shared
    /// view; `self` keeps the first `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n > len()`.
    pub fn split_off(&mut self, n: usize) -> Bytes {
        assert!(n <= self.len(), "split_off out of bounds");
        let tail = Bytes {
            data: Arc::clone(&self.data),
            start: self.start + n,
            end: self.end,
        };
        self.end = self.start + n;
        tail
    }

    /// An O(1) shared sub-view of `range` (relative to this view).
    ///
    /// # Panics
    ///
    /// Panics if the range is decreasing or out of bounds.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let lo = match range.start_bound() {
            Bound::Included(&i) => i,
            Bound::Excluded(&i) => i + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&i) => i + 1,
            Bound::Excluded(&i) => i,
            Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi, "slice range is decreasing");
        assert!(hi <= self.len(), "slice out of bounds");
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + lo,
            end: self.start + hi,
        }
    }

    /// Copies the viewed bytes into a fresh `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance out of bounds");
        self.start += n;
    }

    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }

    fn copy_to_bytes(&mut self, len: usize) -> Bytes {
        self.split_to(len) // O(1) view, overriding the copying default
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    /// O(1): moves the `Vec` into the shared allocation without copying.
    fn from(data: Vec<u8>) -> Self {
        let end = data.len();
        Bytes {
            data: Arc::new(data),
            start: 0,
            end,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(src: &[u8]) -> Self {
        Bytes::from(src.to_vec())
    }
}

impl<const N: usize> From<&[u8; N]> for Bytes {
    fn from(src: &[u8; N]) -> Self {
        Bytes::from(&src[..])
    }
}

impl From<&str> for Bytes {
    fn from(src: &str) -> Self {
        Bytes::from(src.as_bytes())
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b{:?}", self.as_slice())
    }
}

/// A recycling pool of shared byte allocations.
///
/// [`copy_from_slice`](BytesPool::copy_from_slice) copies its input into
/// an allocation the pool owns and hands back an O(1) [`Bytes`] view of
/// it. When every view of a pooled allocation has dropped, the next call
/// reuses that allocation in place — both the reference-count block and
/// the byte storage — so a steady produce-consume loop (decode a frame,
/// hand the payload out, drop it) performs **zero** heap allocations per
/// frame once the pool has warmed up to the working set's size.
///
/// Views that outlive the pool's rotation are safe: an allocation is only
/// reused while the pool holds the *sole* reference (checked with
/// [`Arc::get_mut`]). A slot whose view is retained long-term is evicted
/// from the rotation (the view keeps the data alive) and replaced by a
/// fresh allocation, so a consumer that keeps every frame degrades to
/// one allocation per frame — exactly the unpooled behavior — while a
/// consumer that drops frames promptly pays none.
///
/// # Examples
///
/// ```
/// use bytes::BytesPool;
///
/// let mut pool = BytesPool::new();
/// let first = pool.copy_from_slice(b"frame one");
/// let addr = first.as_ptr();
/// drop(first); // the sole view: the allocation returns to the pool
/// let second = pool.copy_from_slice(b"frame two");
/// assert_eq!(second.as_ptr(), addr, "allocation reused in place");
/// ```
#[derive(Debug)]
pub struct BytesPool {
    slots: Vec<Arc<Vec<u8>>>,
    /// Next slot to try (and to evict when everything is busy), so
    /// retained views rotate out instead of pinning the scan head.
    cursor: usize,
    max_slots: usize,
}

impl Default for BytesPool {
    fn default() -> Self {
        BytesPool::with_slots(8)
    }
}

impl BytesPool {
    /// A pool that retains up to 8 recyclable allocations.
    pub fn new() -> Self {
        BytesPool::default()
    }

    /// A pool that retains up to `max_slots` recyclable allocations
    /// (at least one).
    pub fn with_slots(max_slots: usize) -> Self {
        BytesPool {
            slots: Vec::new(),
            cursor: 0,
            max_slots: max_slots.max(1),
        }
    }

    /// Copies `src` into a pooled allocation and returns a shared view
    /// of it. Reuses a free slot when one exists (no allocation once the
    /// slot's capacity covers `src.len()`); otherwise allocates fresh
    /// and rotates the new allocation into the pool.
    pub fn copy_from_slice(&mut self, src: &[u8]) -> Bytes {
        let n = self.slots.len();
        for probe in 0..n {
            let i = (self.cursor + probe) % n;
            if let Some(vec) = Arc::get_mut(&mut self.slots[i]) {
                vec.clear();
                vec.extend_from_slice(src);
                // Stay on this slot: a steady one-frame-in-flight loop
                // then reuses the same warm allocation every call.
                self.cursor = i;
                return Bytes {
                    data: Arc::clone(&self.slots[i]),
                    start: 0,
                    end: src.len(),
                };
            }
        }
        // Every slot is still referenced by a live view. Allocate fresh
        // and make the new allocation the recycling candidate: if its
        // view drops promptly we are back to zero-alloc next call, and
        // the evicted slot's data stays alive through its own views.
        let fresh = Arc::new(src.to_vec());
        let view = Bytes {
            data: Arc::clone(&fresh),
            start: 0,
            end: src.len(),
        };
        if self.slots.len() < self.max_slots {
            self.slots.push(fresh);
            self.cursor = 0;
        } else {
            let i = self.cursor % self.slots.len();
            self.slots[i] = fresh;
            self.cursor = i; // retry this slot first next call
        }
        view
    }

    /// Number of allocations currently held in the rotation.
    pub fn slot_count(&self) -> usize {
        self.slots.len()
    }
}

/// A mutable, growable byte buffer with a read cursor.
#[derive(Clone, Default)]
pub struct BytesMut {
    data: Vec<u8>,
    start: usize,
}

impl PartialEq for BytesMut {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for BytesMut {}

impl std::hash::Hash for BytesMut {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// An empty buffer with `cap` bytes of pre-allocated space.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
            start: 0,
        }
    }

    /// Unread length.
    pub fn len(&self) -> usize {
        self.data.len() - self.start
    }

    /// True when fully consumed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Removes all contents.
    pub fn clear(&mut self) {
        self.data.clear();
        self.start = 0;
    }

    /// Reserves space for at least `additional` more bytes.
    pub fn reserve(&mut self, additional: usize) {
        self.data.reserve(additional);
    }

    /// Bytes the unread region can grow to without reallocating.
    pub fn capacity(&self) -> usize {
        self.data.capacity() - self.start
    }

    /// Appends raw bytes.
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }

    /// Resizes the unread contents to `new_len` bytes, filling any new
    /// tail with `value` (upstream-compatible). Growing then overwriting
    /// the tail lets a reader deposit bytes directly into the buffer
    /// without an intermediate copy.
    pub fn resize(&mut self, new_len: usize, value: u8) {
        self.data.resize(self.start + new_len, value);
    }

    /// Splits off and returns the first `n` unread bytes.
    ///
    /// Both halves stay independently mutable, so this copies the head out
    /// (sharing a mutable allocation is upstream's unsafe trick). To carve
    /// an immutable view off the front cheaply, use
    /// [`Buf::copy_to_bytes`], which copies once into an `Arc` that every
    /// downstream view then shares.
    pub fn split_to(&mut self, n: usize) -> BytesMut {
        assert!(n <= self.len(), "split_to out of bounds");
        let head = self.data[self.start..self.start + n].to_vec();
        Buf::advance(self, n);
        BytesMut {
            data: head,
            start: 0,
        }
    }

    /// Drops the consumed prefix once it dominates the allocation, so a
    /// long-lived read accumulator (append, decode, repeat) stays
    /// bounded by its unread contents instead of every byte ever read.
    fn maybe_compact(&mut self) {
        if self.start >= 4096 && self.start * 2 >= self.data.len() {
            self.data.drain(..self.start);
            self.start = 0;
        }
    }

    /// Freezes the unread contents into an immutable [`Bytes`].
    ///
    /// O(1) when nothing has been consumed (the buffer moves into the
    /// shared allocation); otherwise copies the unread suffix once. Every
    /// view derived from the result is O(1).
    pub fn freeze(self) -> Bytes {
        if self.start == 0 {
            Bytes::from(self.data)
        } else {
            Bytes::from(&self.data[self.start..])
        }
    }

    fn as_slice(&self) -> &[u8] {
        &self.data[self.start..]
    }

    fn as_mut_slice(&mut self) -> &mut [u8] {
        &mut self.data[self.start..]
    }
}

impl Buf for BytesMut {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance out of bounds");
        self.start += n;
        self.maybe_compact();
    }

    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        self.as_mut_slice()
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<&[u8]> for BytesMut {
    fn from(src: &[u8]) -> Self {
        BytesMut {
            data: src.to_vec(),
            start: 0,
        }
    }
}

impl From<Vec<u8>> for BytesMut {
    fn from(data: Vec<u8>) -> Self {
        BytesMut { data, start: 0 }
    }
}

impl fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b{:?}", self.as_slice())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_little_endian() {
        let mut buf = BytesMut::new();
        buf.put_u8(0xab);
        buf.put_u16_le(0x1234);
        buf.put_u32_le(0xdead_beef);
        buf.put_u64_le(0x0123_4567_89ab_cdef);
        buf.put_slice(b"hi");
        let mut b = buf.freeze();
        assert_eq!(b.get_u8(), 0xab);
        assert_eq!(b.get_u16_le(), 0x1234);
        assert_eq!(b.get_u32_le(), 0xdead_beef);
        assert_eq!(b.get_u64_le(), 0x0123_4567_89ab_cdef);
        assert_eq!(b.to_vec(), b"hi");
    }

    #[test]
    fn split_advance_and_index() {
        let mut buf = BytesMut::from(&b"0123456789"[..]);
        buf.advance(2);
        assert_eq!(&buf[..], b"23456789");
        buf[0] ^= 1; // '2' ^ 1 == '3'
        assert_eq!(buf[0], b'3');
        let head = buf.split_to(3);
        assert_eq!(&head[..], b"334");
        assert_eq!(&buf[..], b"56789");
        let frozen = buf.freeze();
        assert_eq!(frozen.len(), 5);
    }

    #[test]
    fn capacity_tracks_the_unread_region() {
        let mut m = BytesMut::with_capacity(16);
        m.put_slice(b"abcd");
        assert!(m.capacity() >= 16);
        m.advance(2);
        assert_eq!(m.capacity(), m.data.capacity() - 2);
    }

    #[test]
    fn resize_grows_and_shrinks_the_unread_tail() {
        let mut m = BytesMut::from(&b"abc"[..]);
        m.advance(1); // unread: "bc"
        m.resize(4, 0);
        assert_eq!(&m[..], b"bc\0\0");
        m[2..4].copy_from_slice(b"de"); // reader deposits into the tail
        assert_eq!(&m[..], b"bcde");
        m.resize(1, 0);
        assert_eq!(&m[..], b"b");
    }

    #[test]
    fn equality_ignores_consumed_prefix() {
        let mut a = Bytes::from(&b"xy"[..]);
        a.advance(1);
        assert_eq!(a, Bytes::from(&b"y"[..]));
        let mut m = BytesMut::from(&b"xy"[..]);
        m.advance(1);
        assert_eq!(m, BytesMut::from(&b"y"[..]));
    }

    #[test]
    fn long_lived_accumulator_stays_bounded() {
        // Append-decode-repeat on one buffer must not retain every byte
        // ever read (maybe_compact drops the consumed prefix).
        let mut buf = BytesMut::new();
        let chunk = vec![0u8; 8 * 1024];
        for _ in 0..100 {
            buf.extend_from_slice(&chunk);
            buf.advance(chunk.len());
        }
        assert!(buf.is_empty());
        assert!(
            buf.data.len() < 64 * 1024,
            "{} bytes retained after consuming 800 KiB",
            buf.data.len()
        );
    }

    #[test]
    fn bytes_split_to_consumes_front() {
        let mut b = Bytes::from(vec![1u8, 2, 3, 4]);
        let head = b.split_to(2);
        assert_eq!(&head[..], &[1, 2]);
        assert_eq!(&b[..], &[3, 4]);
        assert_eq!(b.remaining(), 2);
    }

    #[test]
    fn clone_and_views_share_the_allocation() {
        let a = Bytes::from(vec![9u8; 1024]);
        let b = a.clone();
        assert_eq!(a.as_ptr(), b.as_ptr(), "clone must not copy");

        let mut c = a.clone();
        let head = c.split_to(100);
        assert_eq!(head.as_ptr(), a.as_ptr());
        assert_eq!(c.as_ptr(), a[100..].as_ptr());

        let mid = a.slice(200..300);
        assert_eq!(mid.as_ptr(), a[200..].as_ptr());
        assert_eq!(mid.len(), 100);
    }

    #[test]
    fn split_off_keeps_head_and_returns_tail() {
        let mut b = Bytes::from(vec![1u8, 2, 3, 4, 5]);
        let tail = b.split_off(2);
        assert_eq!(&b[..], &[1, 2]);
        assert_eq!(&tail[..], &[3, 4, 5]);
        assert_eq!(tail.as_ptr(), b.as_ptr().wrapping_add(2));
    }

    #[test]
    fn slice_bounds_variants() {
        let b = Bytes::from(&b"abcdef"[..]);
        assert_eq!(&b.slice(..)[..], b"abcdef");
        assert_eq!(&b.slice(2..)[..], b"cdef");
        assert_eq!(&b.slice(..4)[..], b"abcd");
        assert_eq!(&b.slice(1..=3)[..], b"bcd");
        assert!(b.slice(3..3).is_empty());
        // Slicing a view is relative to the view, not the allocation.
        let tail = b.slice(2..);
        assert_eq!(&tail.slice(1..3)[..], b"de");
    }

    #[test]
    #[should_panic(expected = "slice out of bounds")]
    fn slice_past_end_panics() {
        let b = Bytes::from(&b"ab"[..]);
        let _ = b.slice(..3);
    }

    #[test]
    fn copy_to_bytes_is_a_view_for_bytes() {
        let mut b = Bytes::from(vec![7u8; 64]);
        let base = b.as_ptr();
        let head = b.copy_to_bytes(16);
        assert_eq!(head.as_ptr(), base, "Bytes::copy_to_bytes must be O(1)");
        assert_eq!(b.as_ptr(), base.wrapping_add(16));
    }

    #[test]
    fn copy_to_bytes_from_bytes_mut() {
        let mut m = BytesMut::from(&b"0123456789"[..]);
        let head = m.copy_to_bytes(4);
        assert_eq!(&head[..], b"0123");
        assert_eq!(&m[..], b"456789");
    }

    #[test]
    fn from_vec_and_unconsumed_freeze_are_moves() {
        // The receive/file-build constructors must not copy: the Vec's
        // allocation is moved into the shared store as-is.
        let v = vec![1u8, 2, 3];
        let p = v.as_ptr();
        let b = Bytes::from(v);
        assert_eq!(b.as_ptr(), p, "From<Vec> must move, not copy");

        let mut m = BytesMut::new();
        m.put_slice(b"xyz");
        let p = m.as_ptr();
        let f = m.freeze();
        assert_eq!(f.as_ptr(), p, "freeze of an unconsumed buffer is free");
    }

    #[test]
    fn pool_reuses_the_allocation_once_views_drop() {
        let mut pool = BytesPool::with_slots(2);
        let a = pool.copy_from_slice(&[1u8; 64]);
        let addr = a.as_ptr();
        drop(a);
        for round in 0..100 {
            let b = pool.copy_from_slice(&[round as u8; 64]);
            assert_eq!(b.as_ptr(), addr, "round {round} must recycle in place");
            assert_eq!(&b[..], &[round as u8; 64]);
            drop(b);
        }
        assert_eq!(pool.slot_count(), 1, "one warm slot serves the whole loop");
    }

    #[test]
    fn pool_never_reuses_an_allocation_with_live_views() {
        let mut pool = BytesPool::with_slots(2);
        let held = pool.copy_from_slice(b"keep me");
        let other = pool.copy_from_slice(b"second");
        assert_ne!(held.as_ptr(), other.as_ptr());
        drop(other);
        let third = pool.copy_from_slice(b"third");
        assert_ne!(third.as_ptr(), held.as_ptr());
        assert_eq!(&held[..], b"keep me", "retained view is untouched");
    }

    #[test]
    fn pool_rotates_out_slots_pinned_by_retained_views() {
        // A consumer that retains every frame caps the pool at max_slots
        // and keeps getting valid (fresh) buffers; dropping the retained
        // views restores recycling.
        let mut pool = BytesPool::with_slots(2);
        let retained: Vec<Bytes> = (0..8)
            .map(|i| pool.copy_from_slice(&[i as u8; 16]))
            .collect();
        assert_eq!(pool.slot_count(), 2);
        for (i, b) in retained.iter().enumerate() {
            assert_eq!(&b[..], &[i as u8; 16], "eviction must not corrupt views");
        }
        drop(retained);
        let a = pool.copy_from_slice(b"x");
        let addr = a.as_ptr();
        drop(a);
        let b = pool.copy_from_slice(b"y");
        assert_eq!(b.as_ptr(), addr, "recycling resumes after views drop");
    }

    #[test]
    fn dropping_views_does_not_invalidate_others() {
        let whole = Bytes::from(vec![5u8; 32]);
        let part = whole.slice(8..24);
        drop(whole);
        assert_eq!(&part[..], &[5u8; 16]); // Arc keeps the allocation alive
    }
}
